package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"capred/internal/server"
)

// startServer runs capserve in-process and returns its base URL.
func startServer(t *testing.T, mutate func(*server.Config)) string {
	t.Helper()
	cfg := server.DefaultConfig()
	cfg.SweepInterval = 0
	if mutate != nil {
		mutate(&cfg)
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return "http://" + ln.Addr().String()
}

// capload runs the command against base with a tiny but real schedule
// (compressed so far that every sleep is sub-millisecond) and returns
// the exit code plus the decoded report.
func capload(t *testing.T, base string, extra ...string) (int, map[string]any, string) {
	t.Helper()
	report := filepath.Join(t.TempDir(), "report.json")
	args := append([]string{
		"-addr", base,
		"-seed", "1",
		"-profile", "bursty",
		"-sessions", "30",
		"-users", "8",
		"-day", "24h",
		"-time-scale", "8640000", // a day in 10ms of wall sleeping
		"-events", "2000",
		"-batch-events", "1000",
		"-report", report,
	}, extra...)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), args, &stdout, &stderr)
	data, err := os.ReadFile(report)
	if err != nil {
		return code, nil, stderr.String()
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	return code, rep, stderr.String()
}

// TestRunCleanAndCrosschecked: a healthy run exits 0, the report's
// totals add up, and the /metrics crosscheck reconciles exactly.
func TestRunCleanAndCrosschecked(t *testing.T) {
	base := startServer(t, nil)
	code, rep, stderr := capload(t, base,
		"-slo", "p99_batch_ms=10000,reject_rate=0,error_rate=0",
		"-timeline", filepath.Join(t.TempDir(), "timeline.csv"))
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, stderr)
	}

	totals := rep["totals"].(map[string]any)
	if got := totals["sessions_planned"].(float64); got != 30 {
		t.Fatalf("sessions_planned = %v, want 30", got)
	}
	if got := totals["sessions_completed"].(float64); got != 30 {
		t.Fatalf("sessions_completed = %v, want 30 (stderr:\n%s)", got, stderr)
	}
	if planned, acked := totals["events_planned"].(float64), totals["events_acked"].(float64); planned != acked {
		t.Fatalf("events planned %v != acked %v on an unconstrained server", planned, acked)
	}

	cc := rep["metrics_crosscheck"].(map[string]any)
	if cc["ok"] != true {
		t.Fatalf("crosscheck failed: %v", cc)
	}
	for _, e := range cc["checks"].([]any) {
		entry := e.(map[string]any)
		if entry["ok"] != true {
			t.Errorf("crosscheck %v: server %v, client %v", entry["metric"], entry["server"], entry["client"])
		}
	}
	for _, s := range rep["slo"].([]any) {
		if s.(map[string]any)["pass"] != true {
			t.Errorf("SLO %v failed on a healthy run", s)
		}
	}
}

// TestRunSLOViolationExits3: an impossible objective turns the same
// healthy run into exit code 3, and the violation is named on stderr.
func TestRunSLOViolationExits3(t *testing.T) {
	base := startServer(t, nil)
	code, rep, stderr := capload(t, base, "-slo", "p99_batch_ms=0.000001")
	if code != 3 {
		t.Fatalf("exit %d, want 3\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "SLO VIOLATION: p99_batch_ms") {
		t.Fatalf("stderr does not name the violated objective:\n%s", stderr)
	}
	// The report is still written in full on a violation.
	if rep["totals"] == nil {
		t.Fatal("violating run produced no report totals")
	}
}

// TestRunRejectionsReconcile: against a server with a tiny session cap
// the fleet sees real 429s — and the client's rejection ledger still
// reconciles with the server's counters exactly.
func TestRunRejectionsReconcile(t *testing.T) {
	base := startServer(t, func(c *server.Config) { c.MaxSessions = 2 })
	code, rep, stderr := capload(t, base, "-users", "16", "-max-tries", "2")
	if code != 0 {
		t.Fatalf("exit %d (crosscheck must hold under rejection)\nstderr:\n%s", code, stderr)
	}
	totals := rep["totals"].(map[string]any)
	if totals["open_429"].(float64) == 0 {
		t.Fatal("a 2-session cap against 16 users produced no 429s — the test lost its teeth")
	}
	if rep["metrics_crosscheck"].(map[string]any)["ok"] != true {
		t.Fatalf("crosscheck failed under rejection: %v", rep["metrics_crosscheck"])
	}
}

// TestRunUsageErrorsExit2: bad flags, bad SLO keys and bad profiles are
// usage errors, not crashes or silent runs.
func TestRunUsageErrorsExit2(t *testing.T) {
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"-profile", "sinusoidal"},
		{"-slo", "p99_latency=50"},
		{"-sessions", "0"},
		{"-nonsense"},
	} {
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
