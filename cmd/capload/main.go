// Command capload is the time-compressed load simulator for capserve:
// it replays a seeded day of streaming prediction sessions against a
// live server through the real HTTP surface and turns the run into a
// JSON report, a timeline CSV, an SLO verdict and a crosscheck against
// the server's own /metrics counters.
//
// Usage:
//
//	capload -addr http://127.0.0.1:8080 -seed 1 -profile bursty \
//	    -sessions 500 -users 64 -day 24h -time-scale 120 \
//	    -slo p99_batch_ms=50,reject_rate=0.01 \
//	    -report report.json -timeline timeline.csv
//
// The schedule is a pure function of the seed: same seed, same profile,
// same counts → the same sessions, batches and due times, byte for
// byte. -time-scale compresses simulated time (120 replays a 24h
// profile in 12 minutes) without changing what is replayed — only how
// fast.
//
// Exit codes: 0 run clean (and SLOs met, crosscheck agreed); 1 run or
// crosscheck failure; 2 usage error; 3 SLO violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"capred/internal/buildinfo"
	"capred/internal/load"
)

// run is the testable entry point, returning the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "capserve base URL")
		seed        = fs.Int64("seed", 1, "schedule seed; same seed replays the identical day")
		profileName = fs.String("profile", "bursty", "arrival profile: steady, diurnal, bursty or ramp")
		sessions    = fs.Int("sessions", 500, "total sessions over the simulated day")
		users       = fs.Int("users", 64, "virtual-user pool size (max in-flight sessions)")
		day         = fs.Duration("day", 24*time.Hour, "simulated span arrivals spread over")
		timeScale   = fs.Float64("time-scale", 120, "time compression: simulated seconds per real second")
		meanEvents  = fs.Int("events", 6000, "mean events per session")
		batchEvents = fs.Int("batch-events", 2000, "events per POSTed batch")
		think       = fs.Duration("think", 5*time.Minute, "mean simulated gap between a session's batches")
		agg         = fs.Duration("agg", 15*time.Minute, "timeline bucket width in simulated time")
		predictors  = fs.String("predictors", "hybrid", "comma-separated predictor-kind rotation")
		traces      = fs.String("traces", "INT_gcc,INT_xli,TPC_t23,MM_mpg", "comma-separated workload-trace rotation")
		maxTries    = fs.Int("max-tries", 8, "attempts per request before giving up on 429s")
		sloSpec     = fs.String("slo", "", "SLO gate, e.g. p99_batch_ms=50,reject_rate=0.01 (keys: "+strings.Join(load.SLOKeys(), ", ")+")")
		crosscheck  = fs.Bool("crosscheck", true, "reconcile client books against the server's /metrics deltas (requires being the only client)")
		reportPath  = fs.String("report", "-", "JSON report destination (- for stdout)")
		timeline    = fs.String("timeline", "", "timeline CSV destination (empty = not written)")
		version     = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("capload"))
		return 0
	}

	slos, err := load.ParseSLOs(*sloSpec)
	if err != nil {
		fmt.Fprintf(stderr, "capload: %v\n", err)
		return 2
	}
	cfg := load.Config{
		Profile:     load.Profile(*profileName),
		Sessions:    *sessions,
		Day:         *day,
		Seed:        *seed,
		MeanEvents:  *meanEvents,
		BatchEvents: *batchEvents,
		Think:       *think,
		Predictors:  splitList(*predictors),
		Traces:      splitList(*traces),
	}
	sched, err := load.Generate(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "capload: %v\n", err)
		return 2
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	ecfg := load.EngineConfig{
		BaseURL:     strings.TrimRight(base, "/"),
		Schedule:    sched,
		TimeScale:   *timeScale,
		Users:       *users,
		MaxTries:    *maxTries,
		AggInterval: *agg,
		Sleep: func(d time.Duration) { // interruptible: SIGINT ends the replay promptly
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
			case <-t.C:
			}
		},
	}
	engine, err := load.NewEngine(ecfg)
	if err != nil {
		fmt.Fprintf(stderr, "capload: %v\n", err)
		return 2
	}

	scraper := &load.Client{HC: http.DefaultClient, Base: ecfg.BaseURL, MaxTries: 1, Now: time.Now, Sleep: func(time.Duration) {}}
	var before map[string]int64
	if *crosscheck {
		if before, err = scraper.Scrape(); err != nil {
			fmt.Fprintf(stderr, "capload: pre-run metrics scrape: %v\n", err)
			return 1
		}
	}

	fmt.Fprintf(stderr, "capload: replaying %d sessions (%s profile) over %v at %gx against %s\n",
		*sessions, cfg.Profile, *day, *timeScale, ecfg.BaseURL)
	res, runErr := engine.Run(ctx)
	if runErr != nil {
		fmt.Fprintf(stderr, "capload: run interrupted: %v\n", runErr)
	}

	report := load.BuildReport(cfg, ecfg, res, time.Now())
	report.SLO = load.EvaluateSLOs(slos, res.Totals, report.Latency)
	if *crosscheck {
		after, err := scraper.Scrape()
		if err != nil {
			fmt.Fprintf(stderr, "capload: post-run metrics scrape: %v\n", err)
			return 1
		}
		report.Crosscheck = load.BuildCrosscheck(before, after, res.Totals)
	}

	if err := writeTo(*reportPath, stdout, report.WriteJSON); err != nil {
		fmt.Fprintf(stderr, "capload: writing report: %v\n", err)
		return 1
	}
	if *timeline != "" {
		err := writeTo(*timeline, stdout, func(w io.Writer) error {
			return load.WriteTimelineCSV(w, res.Timeline)
		})
		if err != nil {
			fmt.Fprintf(stderr, "capload: writing timeline: %v\n", err)
			return 1
		}
	}

	code := 0
	if runErr != nil {
		code = 1
	}
	if report.Crosscheck != nil && !report.Crosscheck.OK {
		fmt.Fprintln(stderr, "capload: FAIL: client books disagree with the server's /metrics counters")
		code = 1
	}
	if n := load.SLOViolations(report.SLO); n > 0 {
		for _, r := range report.SLO {
			if !r.Pass {
				fmt.Fprintf(stderr, "capload: SLO VIOLATION: %s = %g, limit %g\n", r.Key, r.Actual, r.Limit)
			}
		}
		return 3
	}
	if code == 0 {
		fmt.Fprintf(stderr, "capload: done: %d/%d sessions completed, %d events acked, p99 batch %.3fms\n",
			res.Totals.SessionsCompleted, res.Totals.SessionsPlanned, res.Totals.EventsAcked, report.Latency.P99)
	}
	return code
}

// writeTo writes via fn to path, with "-" meaning stdout.
func writeTo(path string, stdout io.Writer, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitList splits a comma-separated flag into trimmed entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
