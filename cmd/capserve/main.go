// Command capserve is the streaming prediction service: a long-running
// HTTP daemon serving prediction sessions (stream v3 trace bytes at a
// predictor, read running counters bit-identical to an offline RunTrace)
// and an async experiment job queue running the registry experiments on
// the sharded scheduler.
//
// Usage:
//
//	capserve -addr :8080
//	capserve -addr 127.0.0.1:0 -pprof -workers 8
//
// API sketch (see DESIGN.md §11 and README for a walked-through curl
// session):
//
//	GET    /healthz                  liveness; 503 while draining
//	GET    /metrics                  Prometheus text format
//	GET    /v1/predictors            predictor kinds sessions can bind to
//	GET    /v1/experiments           experiment registry
//	POST   /v1/sessions              open a session  {"predictor":"hybrid","gap":8,...}
//	POST   /v1/sessions/{id}/events  one v3-encoded batch; returns counters
//	GET    /v1/sessions/{id}         running counters
//	DELETE /v1/sessions/{id}         drain the gap, final counters
//	POST   /v1/jobs                  {"experiment":"fig5","events":100000}
//	GET    /v1/jobs[/{id}[/table]]   queue, status, rendered table
//
// SIGINT/SIGTERM begin a graceful drain: new sessions and jobs are
// rejected with 429 + Retry-After, in-flight batches and running jobs
// get -drain to complete, then the process exits.
//
// With -worker -coordinator URL capserve instead joins a capsim
// -coordinator fleet: it pulls (trace × configuration) shards under
// expiring leases, heartbeats to keep them, fetches traces once by
// content hash, and posts leaf logs back (DESIGN.md §13). It exits 0
// when the coordinator drains it, and abandons (never posts) any shard
// whose lease was revoked or whose run was interrupted.
//
// Exit codes: 0 clean drain; 1 serve or shutdown error; 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"capred/internal/buildinfo"
	"capred/internal/dist"
	"capred/internal/server"
)

// runWorker joins a coordinator fleet and blocks until drained or
// interrupted.
func runWorker(ctx context.Context, coordinator, name string, verbose bool, stdout, stderr io.Writer) int {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	wcfg := dist.WorkerConfig{Coordinator: coordinator, Name: name}
	if verbose {
		wcfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "capserve: "+format+"\n", args...)
		}
	}
	w := dist.NewWorker(wcfg)
	fmt.Fprintf(stdout, "capserve: worker %s pulling from %s\n", name, coordinator)
	err := w.Run(ctx)
	fmt.Fprintf(stderr, "capserve: %s\n", w.Stats())
	if err != nil && ctx.Err() == nil {
		fmt.Fprintf(stderr, "capserve: worker: %v\n", err)
		return 1
	}
	return 0
}

// run is the testable entry point; it blocks until ctx is cancelled or
// the listener fails, and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := server.DefaultConfig()
	var (
		addr          = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		maxSessions   = fs.Int("max-sessions", def.MaxSessions, "concurrently open prediction sessions (0 = unbounded)")
		sessionTTL    = fs.Duration("session-ttl", def.SessionTTL, "evict sessions idle longer than this (0 = never)")
		sessionEvents = fs.Int64("session-events", def.SessionEventBudget, "event budget per session (0 = unlimited)")
		globalEvents  = fs.Int64("global-events", def.GlobalEventBudget, "event budget across all sessions (0 = unlimited)")
		maxBatch      = fs.Int64("max-batch-bytes", def.MaxBatchBytes, "largest accepted events request body")
		jobEvents     = fs.Int64("job-events", def.JobEvents, "default instructions per trace for jobs")
		workers       = fs.Int("workers", runtime.GOMAXPROCS(0), "default scheduler workers per job; results are bit-identical at any count")
		traceTimeout  = fs.Duration("trace-timeout", def.TraceTimeout, "per-trace deadline inside jobs (0 = none)")
		retries       = fs.Int("retries", def.SourceRetries, "retries for transient trace-source failures in jobs")
		jobQueue      = fs.Int("job-queue", def.JobQueueDepth, "queued-but-not-started job bound")
		jobRunners    = fs.Int("job-runners", def.JobRunners, "jobs executing concurrently")
		cacheBudget   = fs.Int64("cache-budget", def.ReplayCacheBudget>>20, "job replay cache budget in MiB (0 = disabled)")
		pprofOn       = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		drain         = fs.Duration("drain", 30*time.Second, "graceful shutdown window for in-flight work")
		version       = fs.Bool("version", false, "print version and exit")

		worker     = fs.Bool("worker", false, "run as a fleet worker pulling shards from -coordinator instead of serving")
		coord      = fs.String("coordinator", "", "coordinator base URL for -worker mode, e.g. http://host:port")
		workerName = fs.String("worker-name", "", "worker identity in leases and logs (default host-pid)")
		workerLog  = fs.Bool("worker-log", false, "log per-shard worker events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("capserve"))
		return 0
	}
	if *worker {
		if *coord == "" {
			fmt.Fprintln(stderr, "capserve: -worker requires -coordinator URL")
			return 2
		}
		return runWorker(ctx, *coord, *workerName, *workerLog, stdout, stderr)
	}

	cfg := def
	cfg.MaxSessions = *maxSessions
	cfg.SessionTTL = *sessionTTL
	cfg.SessionEventBudget = *sessionEvents
	cfg.GlobalEventBudget = *globalEvents
	cfg.MaxBatchBytes = *maxBatch
	cfg.JobEvents = *jobEvents
	cfg.Workers = *workers
	cfg.TraceTimeout = *traceTimeout
	cfg.SourceRetries = *retries
	cfg.JobQueueDepth = *jobQueue
	cfg.JobRunners = *jobRunners
	cfg.ReplayCacheBudget = *cacheBudget << 20
	cfg.EnablePprof = *pprofOn

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "capserve: listen: %v\n", err)
		return 1
	}
	srv := server.New(cfg)
	// The address line goes to stdout so scripts can scrape the bound
	// port when -addr ends in :0.
	fmt.Fprintf(stdout, "capserve: listening on %s\n", ln.Addr())

	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	select {
	case err := <-served:
		fmt.Fprintf(stderr, "capserve: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "capserve: draining (up to %s)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "capserve: shutdown: %v\n", err)
		return 1
	}
	<-served // http.ErrServerClosed once Shutdown has run
	fmt.Fprintln(stderr, "capserve: drained cleanly")
	return 0
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
