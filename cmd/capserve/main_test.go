package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"capred"
)

// lockedBuffer lets the test read run's output while run still writes it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

var addrRe = regexp.MustCompile(`listening on (\S+)`)

// startServer runs the binary's entry point on a free port and returns
// its base URL plus a shutdown func yielding the exit code.
func startServer(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr lockedBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &stdout, &stderr)
	}()

	deadline := time.Now().Add(30 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return base, func() int {
		cancel()
		select {
		case code := <-done:
			if !strings.Contains(stderr.String(), "drained cleanly") && code == 0 {
				t.Errorf("clean exit without drain message:\n%s", stderr.String())
			}
			return code
		case <-time.After(60 * time.Second):
			t.Fatalf("server did not drain\nstderr: %s", stderr.String())
			return -1
		}
	}
}

func TestServeStreamAndDrain(t *testing.T) {
	base, shutdown := startServer(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// One short session over the wire, checked against the offline run.
	spec, ok := capred.TraceByName("INT_xli")
	if !ok {
		t.Fatal("INT_xli missing from the roster")
	}
	var evs []capred.Event
	src := capred.Limit(spec.Open(), 2_000)
	for {
		ev, more := src.Next()
		if !more {
			break
		}
		evs = append(evs, ev)
	}
	var enc bytes.Buffer
	w := capred.NewTraceWriter(&enc)
	for _, ev := range evs {
		if err := w.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	resp, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader(`{"predictor":"hybrid"}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("create session: %d %+v", resp.StatusCode, created)
	}

	resp, err = http.Post(base+"/v1/sessions/"+created.ID+"/events", "application/octet-stream", bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post events: %d", resp.StatusCode)
	}

	req, _ := http.NewRequest("DELETE", base+"/v1/sessions/"+created.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var final struct {
		Counters capred.Counters `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	want, err := capred.RunTrace(capred.NewTraceReader(bytes.NewReader(enc.Bytes())), capred.NewHybrid(capred.DefaultHybridConfig()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.Counters != want {
		t.Fatalf("served counters %+v != offline %+v", final.Counters, want)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d after graceful drain", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr lockedBuffer
	if code := run(context.Background(), []string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit %d: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "capserve ") {
		t.Fatalf("-version output %q", stdout.String())
	}
}

func TestUsageAndListenErrors(t *testing.T) {
	var out lockedBuffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &out); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &out); code != 1 {
		t.Fatalf("bad addr: exit %d", code)
	}
}

func TestDrainRejectsNewSessionsOverWire(t *testing.T) {
	base, shutdown := startServer(t)

	// Hold a session open so drain has in-flight state to respect.
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(`{"predictor":"stride"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	codes := make(chan int, 1)
	go func() {
		// Poll until drain mode rejects creates; the first non-201 wins.
		for i := 0; i < 2000; i++ {
			r, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(`{"predictor":"cap"}`))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusCreated {
				codes <- r.StatusCode
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		codes <- 0
	}()

	if code := shutdown(); code != 0 {
		t.Fatalf("drain exit code %d", code)
	}
	select {
	case got := <-codes:
		// -1 (connection refused after full shutdown) is acceptable; what
		// must never happen is a hang or a non-429 error while draining.
		if got != http.StatusTooManyRequests && got != -1 {
			t.Fatalf("create during drain: got %d, want 429 (or refused)", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain probe never returned")
	}
}
