// Command capvet runs the project's static analyzer suite: the
// invariants behind the repo's determinism, error-drain, and
// concurrency guarantees, enforced at build time. See DESIGN.md §12
// for the catalogue and internal/analysis for the analyzers.
//
// Usage:
//
//	capvet [-json] [-list] [-ignores] [package patterns...]
//
// Patterns are interpreted against the enclosing module: "./..."
// (the default) vets every package, "./internal/..." a subtree,
// "./internal/sim" one package. Test files and testdata directories
// are never analyzed.
//
// A finding can be suppressed with an in-source directive carrying a
// mandatory reason:
//
//	// capvet:ignore <analyzer> <reason>
//
// A directive whose analyzer no longer reports anything at that line
// is stale and becomes a finding itself. -ignores audits the
// suppression surface: it lists every directive with its file,
// analyzer and reason instead of running the analyzers.
//
// Exit codes: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"capred/internal/analysis"
	"capred/internal/buildinfo"
)

// jsonReport is the -json output schema: the findings plus their
// count, so "clean" serialises as an explicit zero rather than null.
type jsonReport struct {
	Findings []analysis.Diagnostic `json:"findings"`
	Count    int                   `json:"count"`
}

// run is the testable entry point: parses args, vets the module
// enclosing the working directory, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as JSON")
		list    = fs.Bool("list", false, "list analyzers and exit")
		ignores = fs.Bool("ignores", false, "list every capvet:ignore directive instead of running the analyzers")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("capvet"))
		return 0
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "capvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "capvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "capvet: %v\n", err)
		return 2
	}
	pkgs, err = analysis.Match(pkgs, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "capvet: %v\n", err)
		return 2
	}

	if *ignores {
		dirs := analysis.Directives(loader, pkgs)
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(dirs); err != nil {
				fmt.Fprintf(stderr, "capvet: %v\n", err)
				return 2
			}
			return 0
		}
		for _, d := range dirs {
			status := ""
			if d.Malformed {
				status = " [malformed]"
			}
			fmt.Fprintf(stdout, "%s:%d: %s: %s%s\n", d.File, d.Line, d.Analyzer, d.Reason, status)
		}
		return 0
	}

	diags := analysis.Run(loader, pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Findings: diags, Count: len(diags)}); err != nil {
			fmt.Fprintf(stderr, "capvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so capvet behaves identically from any directory inside the
// module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
