package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"capred/internal/analysis"
)

// chdir switches the working directory for one test and restores it
// afterwards. (testing.T.Chdir needs go >= 1.24 in go.mod, which this
// module doesn't declare.)
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// writeModule lays out a throwaway module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestCleanTreeExitsZero locks the CI contract: the repo's own tree
// must vet clean. Running from the package directory exercises the
// walk-up-to-go.mod behaviour at the same time.
func TestCleanTreeExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run should print nothing, got:\n%s", &stdout)
	}
}

func TestFindingsExitOne(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": `package foo

import "fmt"

func Loud() { fmt.Println("hi") }
`,
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "noprint") || !strings.Contains(out, "internal/foo/foo.go:5") {
		t.Errorf("finding not reported as file:line: analyzer:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": `package foo

import "fmt"

func Loud() { fmt.Println("hi") }
`,
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, &stderr)
	}
	var rep struct {
		Findings []analysis.Diagnostic `json:"findings"`
		Count    int                   `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not the documented JSON schema: %v\n%s", err, &stdout)
	}
	if rep.Count != len(rep.Findings) || rep.Count == 0 {
		t.Fatalf("count %d inconsistent with %d findings", rep.Count, len(rep.Findings))
	}
	d := rep.Findings[0]
	if d.Analyzer != "noprint" || d.File != "internal/foo/foo.go" || d.Line != 5 || d.Message == "" {
		t.Errorf("finding fields wrong: %+v", d)
	}
}

func TestJSONCleanHasExplicitZero(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": "package foo\n\nfunc Quiet() int { return 1 }\n",
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, `"count": 0`) {
		t.Errorf("clean JSON should carry an explicit zero count:\n%s", out)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": "package foo\n\nfunc Broken() {\n", // unclosed body
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, &stderr)
	}
	if stderr.Len() == 0 {
		t.Error("load error should be explained on stderr")
	}
}

func TestUnmatchedPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/tree/..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, &stderr)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestListAndVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d, want 0\nstderr:\n%s", code, &stderr)
	}
	for _, name := range []string{"determinism", "drain", "goisolate", "atomicfield", "noprint"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, &stdout)
		}
	}
	stdout.Reset()
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version: exit %d, want 0", code)
	}
	if stdout.Len() == 0 {
		t.Error("-version printed nothing")
	}
}
