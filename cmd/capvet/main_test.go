package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"capred/internal/analysis"
)

// chdir switches the working directory for one test and restores it
// afterwards. (testing.T.Chdir needs go >= 1.24 in go.mod, which this
// module doesn't declare.)
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// writeModule lays out a throwaway module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestCleanTreeExitsZero locks the CI contract: the repo's own tree
// must vet clean. Running from the package directory exercises the
// walk-up-to-go.mod behaviour at the same time.
func TestCleanTreeExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run should print nothing, got:\n%s", &stdout)
	}
}

func TestFindingsExitOne(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": `package foo

import "fmt"

func Loud() { fmt.Println("hi") }
`,
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "noprint") || !strings.Contains(out, "internal/foo/foo.go:5") {
		t.Errorf("finding not reported as file:line: analyzer:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": `package foo

import "fmt"

func Loud() { fmt.Println("hi") }
`,
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, &stderr)
	}
	var rep struct {
		Findings []analysis.Diagnostic `json:"findings"`
		Count    int                   `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not the documented JSON schema: %v\n%s", err, &stdout)
	}
	if rep.Count != len(rep.Findings) || rep.Count == 0 {
		t.Fatalf("count %d inconsistent with %d findings", rep.Count, len(rep.Findings))
	}
	d := rep.Findings[0]
	if d.Analyzer != "noprint" || d.File != "internal/foo/foo.go" || d.Line != 5 || d.Message == "" {
		t.Errorf("finding fields wrong: %+v", d)
	}
}

func TestJSONCleanHasExplicitZero(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": "package foo\n\nfunc Quiet() int { return 1 }\n",
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, `"count": 0`) {
		t.Errorf("clean JSON should carry an explicit zero count:\n%s", out)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": "package foo\n\nfunc Broken() {\n", // unclosed body
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, &stderr)
	}
	if stderr.Len() == 0 {
		t.Error("load error should be explained on stderr")
	}
}

func TestUnmatchedPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/tree/..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, &stderr)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestJSONSortDeterministic pins the -json ordering contract: findings
// sort by (file, line, column, analyzer) regardless of package walk
// order, so diffing two runs never churns on ordering.
func TestJSONSortDeterministic(t *testing.T) {
	loud := `package %s

import "fmt"

func A() { fmt.Println("a"); fmt.Print("b") }

func B() { fmt.Println("c") }
`
	root := writeModule(t, map[string]string{
		"go.mod":               "module tmpmod\n\ngo 1.22\n",
		"internal/zebra/z.go":  "package zebra\n\nimport \"fmt\"\n\nfunc Z() { fmt.Println(\"z\") }\n",
		"internal/alpha/a.go":  strings.ReplaceAll(loud, "%s", "alpha"),
		"internal/middle/m.go": "package middle\n\nimport \"fmt\"\n\nfunc M() { fmt.Print(\"m\") }\n",
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, &stderr)
	}
	var rep struct {
		Findings []analysis.Diagnostic `json:"findings"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rep.Findings) < 4 {
		t.Fatalf("want at least 4 findings across packages, got %d", len(rep.Findings))
	}
	for i := 1; i < len(rep.Findings); i++ {
		a, b := rep.Findings[i-1], rep.Findings[i]
		ka := [3]any{a.File, a.Line, a.Col}
		kb := [3]any{b.File, b.Line, b.Col}
		inOrder := a.File < b.File ||
			(a.File == b.File && (a.Line < b.Line ||
				(a.Line == b.Line && (a.Col < b.Col ||
					(a.Col == b.Col && a.Analyzer <= b.Analyzer)))))
		if !inOrder {
			t.Errorf("findings out of order at %d: %v then %v", i, ka, kb)
		}
	}
}

// TestStaleIgnoreFinding: a well-formed directive whose analyzer
// reports nothing at that line is itself a finding.
func TestStaleIgnoreFinding(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": `package foo

// capvet:ignore noprint historical suppression kept after the fix
func Quiet() int { return 2 }
`,
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stdout.String(), "stale capvet:ignore directive") {
		t.Errorf("stale directive not reported:\n%s", &stdout)
	}
}

// TestIgnoresAudit: -ignores lists every directive with file, analyzer
// and reason instead of running the analyzers.
func TestIgnoresAudit(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/foo/foo.go": `package foo

import "fmt"

func Loud() {
	fmt.Println("hi") // capvet:ignore noprint demo output is part of the CLI contract
}
`,
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-ignores", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-ignores: exit %d, want 0\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "internal/foo/foo.go:6") || !strings.Contains(out, "noprint") ||
		!strings.Contains(out, "demo output is part of the CLI contract") {
		t.Errorf("-ignores output missing file/analyzer/reason:\n%s", out)
	}
	stdout.Reset()
	if code := run([]string{"-ignores", "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-ignores -json: exit %d, want 0\nstderr:\n%s", code, &stderr)
	}
	var dirs []analysis.DirectiveInfo
	if err := json.Unmarshal(stdout.Bytes(), &dirs); err != nil {
		t.Fatalf("-ignores -json is not a DirectiveInfo list: %v\n%s", err, &stdout)
	}
	if len(dirs) != 1 || dirs[0].Analyzer != "noprint" || dirs[0].Malformed {
		t.Errorf("unexpected audit entries: %+v", dirs)
	}
}

// TestHotAllocTripsOnStepBlock is the acceptance check for the
// hotalloc contract: deliberately adding an allocation to a StepBlock
// hot loop in a throwaway module trips the analyzer.
func TestHotAllocTripsOnStepBlock(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/sim/step.go": `package sim

type Stepper struct {
	out []int
}

func (s *Stepper) StepBlock(n int) {
	for i := 0; i < n; i++ {
		s.out = append(s.out, i) // the deliberate allocation
	}
}
`,
	})
	chdir(t, root)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "hotalloc") || !strings.Contains(out, "append") ||
		!strings.Contains(out, "internal/sim/step.go:9") {
		t.Errorf("hotalloc did not flag the StepBlock allocation:\n%s", out)
	}
}

func TestListAndVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d, want 0\nstderr:\n%s", code, &stderr)
	}
	for _, name := range []string{"determinism", "drain", "goisolate", "atomicfield", "noprint", "blockown", "hotalloc", "ctxflow"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, &stdout)
		}
	}
	stdout.Reset()
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version: exit %d, want 0", code)
	}
	if stdout.Len() == 0 {
		t.Error("-version printed nothing")
	}
}
