package main

import (
	"strings"
	"testing"

	"capred"
)

// TestEveryExperimentRuns drives each registered experiment end to end at
// a tiny budget: the registry, the drivers and the table renderers must
// all hold together.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	cfg := capred.ExperimentConfig{EventsPerTrace: 4000}
	for _, name := range names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tab, fails := experiments[name].run(cfg)
			out := tab.String()
			if len(out) == 0 {
				t.Fatal("empty table")
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("table has no rows:\n%s", out)
			}
			if len(fails) != 0 {
				t.Fatalf("clean run reported failures: %v", fails)
			}
		})
	}
}

func TestRegistryDescriptions(t *testing.T) {
	for _, name := range names() {
		if experiments[name].desc == "" {
			t.Errorf("experiment %s has no description", name)
		}
	}
}
