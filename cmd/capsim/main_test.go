package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"capred"
)

// TestEveryExperimentRuns drives each registered experiment end to end at
// a tiny budget: the registry, the drivers and the table renderers must
// all hold together.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	cfg := capred.ExperimentConfig{EventsPerTrace: 4000}
	for _, e := range capred.Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			r := e.Run(cfg)
			out := r.Table().String()
			if len(out) == 0 {
				t.Fatal("empty table")
			}
			if !strings.Contains(out, "\n") {
				t.Fatalf("table has no rows:\n%s", out)
			}
			if fails := r.Failed(); len(fails) != 0 {
				t.Fatalf("clean run reported failures: %v", fails)
			}
		})
	}
}

func TestRegistryDescriptions(t *testing.T) {
	for _, e := range capred.Experiments() {
		if e.Desc == "" {
			t.Errorf("experiment %s has no description", e.Name)
		}
		if _, ok := capred.ExperimentByName(e.Name); !ok {
			t.Errorf("experiment %s not resolvable by name", e.Name)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit %d: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "capsim ") {
		t.Fatalf("-version output %q", stdout.String())
	}
}
