package main

import (
	"bytes"
	"context"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestInjectedFaultsStillPrintTheTable is the acceptance scenario: fig5
// with one decode-error trace and one panicking predictor factory must
// still print the table aggregated from the remaining traces, list both
// failures, and exit non-zero.
func TestInjectedFaultsStillPrintTheTable(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(context.Background(),
		[]string{"-experiment", "fig5", "-events", "10000",
			"-inject", "INT_go=decode,CAD_cat=panic"},
		&out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	table := out.String()
	if !strings.Contains(table, "Fig. 5") && !strings.Contains(table, "fig") && !strings.Contains(table, "suite") {
		t.Errorf("table not printed:\n%s", table)
	}
	if !strings.Contains(table, "WARNING") {
		t.Errorf("partial-results footer missing:\n%s", table)
	}
	diag := errOut.String()
	for _, want := range []string{"INT_go", "CAD_cat", "panic", "trace run(s) failed"} {
		if !strings.Contains(diag, want) {
			t.Errorf("stderr missing %q:\n%s", want, diag)
		}
	}
	if !strings.Contains(diag, "stack:") {
		t.Errorf("panic stack not reported:\n%s", diag)
	}
}

func TestCommaSeparatedExperimentsContinuePastFailures(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(context.Background(),
		[]string{"-experiment", "fig9,fig10", "-events", "5000",
			"-inject", "INT_go=truncate"},
		&out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	// Both experiments must have produced their table despite the
	// failures in the first.
	if got := strings.Count(out.String(), "history"); got == 0 {
		t.Errorf("fig9 table missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "tag") {
		t.Errorf("fig10 table missing:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "failures in: fig10, fig9") {
		t.Errorf("final failure summary missing:\n%s", errOut.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-experiment", "nope"},
		{},
		{"-experiment", "fig5", "-inject", "INT_go"},
		{"-experiment", "fig5", "-inject", "INT_go=meteor"},
		{"-experiment", ","},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2", args, code)
		}
	}
}

func TestListExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, n := range names() {
		if !strings.Contains(out.String(), n) {
			t.Errorf("-list output missing %q", n)
		}
	}
}

// TestSIGINTProducesPartialOutput drives the real signal path: a SIGINT
// mid-run cancels the in-flight traces, the completed portion is still
// printed, and the exit code is non-zero.
func TestSIGINTProducesPartialOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("signal integration")
	}
	// The same NotifyContext main() installs; while registered it also
	// keeps the default SIGINT handler from killing the test binary.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT)
	defer stop()

	var out, errOut bytes.Buffer
	done := make(chan int, 1)
	go func() {
		// A budget large enough that the run is still in flight when the
		// signal lands.
		done <- run(ctx, []string{"-experiment", "fig5", "-events", "100000000"}, &out, &errOut)
	}()

	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	select {
	case code := <-done:
		if code != 1 {
			t.Errorf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not stop after SIGINT")
	}
	if !strings.Contains(errOut.String(), "interrupted") {
		t.Errorf("stderr should report the interruption:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "WARNING") {
		t.Errorf("partial table with failure footer should still print:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "context canceled") {
		t.Errorf("failures should carry the cancellation cause:\n%s", errOut.String())
	}
}
