// Command capsim runs the paper's experiments and prints their tables.
//
// Usage:
//
//	capsim -experiment fig5 [-events N] [-workers N]
//	capsim -experiment fig5,fig7,baselines
//	capsim -experiment all
//	capsim -list
//
// By default each trace stream is materialised once into a compact
// in-memory encoding and replayed across every experiment pass
// (-replay-cache=false restores live regeneration; -cache-budget caps
// the cache in MiB, -cache-stats reports its hit counts on exit).
// Cached replay is bit-identical to regeneration, so results do not
// depend on the flag.
//
// Experiments: fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 update-policy
// lt-size baselines control ablations profile-assist addr-vs-value
// prefetch classes wrong-path.
//
// Trace failures (decode errors, predictor panics, cancellation) do not
// abort a sweep: the affected trace is dropped from the aggregates, the
// table is printed from the survivors with a failure footer, and capsim
// exits non-zero. SIGINT/SIGTERM cancel the in-flight traces; whatever
// completed is still printed.
//
// With -coordinator HOST:PORT capsim additionally serves the distributed
// fleet API on that address and dispatches each experiment's (trace ×
// configuration) shards to capserve -worker processes under expiring
// leases (see DESIGN.md §13). The printed tables are byte-identical to a
// local run at any fleet size, including zero: with no registered worker
// the coordinator degrades to in-process execution. The bound address is
// announced on stderr so stdout stays comparable to local output.
//
// Exit codes: 0 all experiments clean; 1 at least one trace run or
// experiment failed (including cancellation); 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"capred"
	"capred/internal/buildinfo"
	"capred/internal/dist"
)

// names lists the registered experiment names, sorted.
func names() []string {
	exps := capred.Experiments()
	out := make([]string, 0, len(exps))
	for _, e := range exps {
		out = append(out, e.Name)
	}
	return out
}

// parseInjections parses the -inject spec ("trace=mode,trace=mode") and
// installs the matching fault wrappers on the config. Modes: decode (the
// source fails mid-trace with a decode error), truncate (the source fails
// on the first event), panic (the predictor factory panics).
func parseInjections(cfg *capred.ExperimentConfig, spec string) error {
	srcMode := map[string]string{}
	panicTraces := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, mode, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("bad -inject entry %q (want trace=mode)", part)
		}
		switch mode {
		case "decode", "truncate":
			srcMode[name] = mode
		case "panic":
			panicTraces[name] = true
		default:
			return fmt.Errorf("bad -inject mode %q (want decode, truncate or panic)", mode)
		}
	}
	if len(srcMode) > 0 {
		cfg.WrapSource = func(name string, src capred.Source) capred.Source {
			switch srcMode[name] {
			case "decode":
				return capred.NewFailAfter(src, 1000, fmt.Errorf("injected decode error: %w", capred.ErrInjected))
			case "truncate":
				return capred.NewErrSource(fmt.Errorf("injected truncation: %w", capred.ErrInjected))
			}
			return src
		}
	}
	if len(panicTraces) > 0 {
		cfg.WrapFactory = func(name string, f capred.Factory) capred.Factory {
			if !panicTraces[name] {
				return f
			}
			return func() capred.Predictor { panic("injected predictor panic for " + name) }
		}
	}
	return nil
}

// reportFailures prints an experiment's failure summary to stderr,
// including recovered panic stacks.
func reportFailures(stderr io.Writer, name string, fails []capred.TraceFailure) {
	fmt.Fprintf(stderr, "capsim: experiment %s: %d trace run(s) failed\n", name, len(fails))
	for _, f := range fails {
		fmt.Fprintf(stderr, "  %s\n", f.String())
		var pe *capred.PanicError
		if errors.As(f.Err, &pe) && len(pe.Stack) > 0 {
			fmt.Fprintf(stderr, "    stack:\n")
			for _, line := range strings.Split(strings.TrimRight(string(pe.Stack), "\n"), "\n") {
				fmt.Fprintf(stderr, "    %s\n", line)
			}
		}
	}
}

// run is the testable entry point: parses args, runs the selected
// experiments, and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("capsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("experiment", "", "comma-separated experiments to run (or 'all')")
		events   = fs.Int64("events", 400_000, "instructions per trace")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines sharding each experiment's (trace, config) grid; 1 = serial")
		retries  = fs.Int("retries", 0, "retries for transient trace-source failures")
		inject   = fs.String("inject", "", "fault injection: trace=mode[,trace=mode] (modes: decode, truncate, panic)")
		useCache = fs.Bool("replay-cache", true, "materialise each trace once and replay it across experiments")
		budget   = fs.Int64("cache-budget", 512, "replay cache budget in MiB (0 = unlimited)")
		cacheLog = fs.Bool("cache-stats", false, "print replay cache statistics to stderr on exit")
		list     = fs.Bool("list", false, "list available experiments")
		version  = fs.Bool("version", false, "print version and exit")

		coordAddr = fs.String("coordinator", "", "serve the fleet API on this host:port and dispatch shards to capserve -worker processes")
		lease     = fs.Duration("lease", 10*time.Second, "shard lease: a worker silent this long forfeits the shard for re-claim")
		attempts  = fs.Int("max-attempts", 3, "lease grants per shard before it fails with an attributed error")
		localWk   = fs.Int("local-workers", runtime.GOMAXPROCS(0), "in-process runners when no remote worker is available (-1 disables degraded mode)")
		localWait = fs.Duration("local-delay", 3*time.Second, "grace period for the first worker to register before degrading to local execution")
		drainWait = fs.Duration("drain", 10*time.Second, "wait for workers to acknowledge drain on exit")
		fleetLog  = fs.Bool("fleet-log", false, "log fleet events (registrations, reclaims, duplicates) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *version {
		fmt.Fprintln(stdout, buildinfo.String("capsim"))
		return 0
	}
	if *list {
		for _, e := range capred.Experiments() {
			fmt.Fprintf(stdout, "%-14s %s\n", e.Name, e.Desc)
		}
		return 0
	}

	cfg := capred.ExperimentConfig{
		EventsPerTrace: *events,
		Workers:        *workers,
		SourceRetries:  *retries,
		Ctx:            ctx,
	}
	if *useCache {
		cfg.ReplayCache = capred.NewReplayCache(*budget << 20)
	}
	if err := parseInjections(&cfg, *inject); err != nil {
		fmt.Fprintf(stderr, "capsim: %v\n", err)
		return 2
	}

	var selected []string
	switch {
	case *exp == "all":
		selected = names()
	case *exp != "":
		for _, n := range strings.Split(*exp, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if _, ok := capred.ExperimentByName(n); !ok {
				fmt.Fprintf(stderr, "capsim: unknown experiment %q; use -list\n", n)
				return 2
			}
			selected = append(selected, n)
		}
		if len(selected) == 0 {
			fmt.Fprintln(stderr, "capsim: -experiment list is empty; use -list to enumerate")
			return 2
		}
	default:
		fmt.Fprintln(stderr, "capsim: -experiment required; use -list to enumerate")
		return 2
	}

	// With -coordinator, experiments run through the fleet layer; the
	// address line goes to stderr so stdout stays byte-comparable to a
	// local run.
	var coord *dist.Coordinator
	if *coordAddr != "" {
		ln, err := net.Listen("tcp", *coordAddr)
		if err != nil {
			fmt.Fprintf(stderr, "capsim: coordinator listen: %v\n", err)
			return 2
		}
		ccfg := dist.CoordConfig{
			Lease:        *lease,
			MaxAttempts:  *attempts,
			LocalWorkers: *localWk,
			LocalDelay:   *localWait,
		}
		if *fleetLog {
			ccfg.Logf = func(format string, args ...any) {
				fmt.Fprintf(stderr, "capsim: "+format+"\n", args...)
			}
		}
		coord = dist.NewCoordinator(ccfg)
		hs := &http.Server{Handler: coord.Handler()}
		go func() { hs.Serve(ln) }()
		defer hs.Close()
		fmt.Fprintf(stderr, "capsim: coordinator listening on %s\n", ln.Addr())
	}

	// Run every selected experiment even when earlier ones fail; report
	// all failures at the end and exit non-zero if any occurred.
	failed := map[string]int{}
	for _, n := range selected {
		e, _ := capred.ExperimentByName(n)
		var r capred.ExperimentResult
		if coord != nil {
			r = coord.RunExperiment(e, cfg)
		} else {
			r = e.Run(cfg)
		}
		fmt.Fprintln(stdout, r.Table())
		fails := r.Failed()
		if len(fails) > 0 {
			failed[n] = len(fails)
			reportFailures(stderr, n, fails)
		}
		if err := ctx.Err(); err != nil {
			// Cancelled: the tables so far are printed; stop starting new
			// experiments.
			fmt.Fprintf(stderr, "capsim: interrupted (%v); printed partial results\n", err)
			break
		}
	}
	if coord != nil {
		// Wind the fleet down: workers see drain=true on their next claim
		// and exit cleanly; stragglers are abandoned after the window.
		coord.BeginDrain()
		if !coord.WaitDrained(ctx, *drainWait) {
			fmt.Fprintln(stderr, "capsim: drain window elapsed with workers still registered")
		}
		fmt.Fprintf(stderr, "capsim: %s\n", coord.Stats())
	}
	if *cacheLog && cfg.ReplayCache != nil {
		fmt.Fprintf(stderr, "capsim: %s\n", cfg.ReplayCache.Stats())
	}
	if len(failed) > 0 || ctx.Err() != nil {
		if len(failed) > 0 {
			keys := make([]string, 0, len(failed))
			for n := range failed {
				keys = append(keys, n)
			}
			sort.Strings(keys)
			fmt.Fprintf(stderr, "capsim: failures in: %s\n", strings.Join(keys, ", "))
		}
		return 1
	}
	return 0
}

func main() {
	// SIGINT/SIGTERM cancel in-flight traces; experiments then return
	// partial results which run prints before exiting non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
