// Command capsim runs the paper's experiments and prints their tables.
//
// Usage:
//
//	capsim -experiment fig5 [-events N] [-parallel N]
//	capsim -experiment all
//	capsim -list
//
// Experiments: fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 update-policy
// lt-size baselines control ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"capred"
)

// tabler is any experiment result that renders a figure table.
type tabler interface{ String() string }

var experiments = map[string]struct {
	desc string
	run  func(capred.ExperimentConfig) tabler
}{
	"fig5": {"prediction rate & accuracy of stride, CAP, hybrid per suite",
		func(c capred.ExperimentConfig) tabler { return capred.Fig5(c).Table() }},
	"fig6": {"hybrid prediction rate vs LB entries/associativity",
		func(c capred.ExperimentConfig) tabler { return capred.Fig6(c).Table() }},
	"fig7": {"per-trace speedup over no address prediction (timing model)",
		func(c capred.ExperimentConfig) tabler { return capred.Fig7(c).Table() }},
	"fig8": {"hybrid selector state distribution and correct-selection rate",
		func(c capred.ExperimentConfig) tabler { return capred.Fig8(c).Table() }},
	"fig9": {"correct predictions vs history length, ± global correlation",
		func(c capred.ExperimentConfig) tabler { return capred.Fig9(c).Table() }},
	"fig10": {"influence of LT tags and path info on CAP",
		func(c capred.ExperimentConfig) tabler { return capred.Fig10(c).Table() }},
	"fig11": {"influence of the prediction gap on rate and accuracy",
		func(c capred.ExperimentConfig) tabler { return capred.Fig11(c).Table() }},
	"fig12": {"per-suite speedup, immediate vs prediction gap 8",
		func(c capred.ExperimentConfig) tabler { return capred.Fig12(c).Table() }},
	"update-policy": {"§4.3 LT update policies",
		func(c capred.ExperimentConfig) tabler { return capred.RunUpdatePolicy(c).Table() }},
	"lt-size": {"§4.2 hybrid rate vs LT entries",
		func(c capred.ExperimentConfig) tabler { return capred.RunLTSize(c).Table() }},
	"baselines": {"§1 predictor family ladder",
		func(c capred.ExperimentConfig) tabler { return capred.RunBaselines(c).Table() }},
	"control": {"§3.6 control-based predictors vs CAP",
		func(c capred.ExperimentConfig) tabler { return capred.RunControlBased(c).Table() }},
	"ablations": {"design-choice ablations beyond the paper's figures",
		func(c capred.ExperimentConfig) tabler { return capred.RunAblations(c).Table() }},
	"profile-assist": {"§6 future work: profile-guided load classification",
		func(c capred.ExperimentConfig) tabler { return capred.RunProfileAssist(c).Table() }},
	"addr-vs-value": {"§1: address vs load-value predictability",
		func(c capred.ExperimentConfig) tabler { return capred.RunAddressVsValue(c).Table() }},
	"prefetch": {"§1.1: data prefetching vs address prediction",
		func(c capred.ExperimentConfig) tabler { return capred.RunPrefetch(c).Table() }},
	"classes": {"§2: per-pattern-class coverage of each predictor",
		func(c capred.ExperimentConfig) tabler { return capred.RunClassCoverage(c).Table() }},
	"wrong-path": {"§5.4: wrong-path predictions with and without squash recovery",
		func(c capred.ExperimentConfig) tabler { return capred.RunWrongPath(c).Table() }},
}

func names() []string {
	out := make([]string, 0, len(experiments))
	for n := range experiments {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func main() {
	var (
		exp      = flag.String("experiment", "", "experiment to run (or 'all')")
		events   = flag.Int64("events", 400_000, "instructions per trace")
		parallel = flag.Int("parallel", 0, "concurrent trace simulations (0 = NumCPU)")
		list     = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, n := range names() {
			fmt.Printf("%-14s %s\n", n, experiments[n].desc)
		}
		return
	}
	cfg := capred.ExperimentConfig{EventsPerTrace: *events, Parallelism: *parallel}

	switch {
	case *exp == "all":
		for _, n := range names() {
			fmt.Println(experiments[n].run(cfg))
		}
	case *exp != "":
		e, ok := experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "capsim: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		fmt.Println(e.run(cfg))
	default:
		fmt.Fprintln(os.Stderr, "capsim: -experiment required; use -list to enumerate")
		os.Exit(2)
	}
}
