package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"capred"
)

func TestWriteTraceHappyPath(t *testing.T) {
	spec, _ := capred.TraceByName("INT_go")
	path := filepath.Join(t.TempDir(), "out.capt")
	n, err := writeTrace(path, capred.Limit(spec.Open(), 5000))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5000 {
		t.Errorf("wrote %d events, want 5000", n)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := capred.CollectStats(capred.NewTraceReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != n {
		t.Errorf("round trip decoded %d events, wrote %d", stats.Total, n)
	}
}

func TestWriteTraceRemovesPartialFileOnSourceError(t *testing.T) {
	spec, _ := capred.TraceByName("INT_go")
	src := capred.NewFailAfter(capred.Limit(spec.Open(), 5000), 100, nil)
	path := filepath.Join(t.TempDir(), "out.capt")
	n, err := writeTrace(path, src)
	if !errors.Is(err, capred.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 100 {
		t.Errorf("emitted %d events before the failure, want 100", n)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Errorf("partial output file still exists: %v", statErr)
	}
}

func TestWriteTraceRemovesFileOnEmitError(t *testing.T) {
	// Creating the output inside a directory we then make read-only is
	// fiddly and platform-dependent; instead drive the emit-error path by
	// pointing the output at a directory, which os.Create rejects — the
	// create-error path must not remove anything else.
	dir := t.TempDir()
	if _, err := writeTrace(dir, capred.NewErrSource(nil)); err == nil {
		t.Fatal("expected create error for a directory path")
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("directory was removed: %v", err)
	}
}

func TestRunVersionAndList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit %d", code)
	}
	if !strings.HasPrefix(stdout.String(), "tracegen ") {
		t.Fatalf("-version output %q", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	if !strings.Contains(stdout.String(), "INT_go") {
		t.Fatalf("-list output missing INT_go:\n%s", stdout.String())
	}
	if code := run([]string{"-trace", "NO_SUCH"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown trace exit %d, want 2", code)
	}
}
