// Command tracegen writes one of the 45 synthetic traces to a binary
// trace file readable by cmd/traceinfo and capred.NewTraceReader.
//
// Usage:
//
//	tracegen -trace INT_xli -events 1000000 -o int_xli.capt
//	tracegen -list
//
// A failed run never leaves a partially-written trace file behind: on
// any emit, flush or close error the output file is removed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"capred"
	"capred/internal/buildinfo"
)

// writeTrace streams src into a freshly-created trace file at path. On
// any error the partial file is removed so a truncated trace can never
// be mistaken for a complete one. Returns the number of events written.
func writeTrace(path string, src capred.Source) (n int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(path)
		}
	}()
	w := capred.NewTraceWriter(f)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err = w.Emit(ev); err != nil {
			return n, fmt.Errorf("emit: %w", err)
		}
		n++
	}
	if err = src.Err(); err != nil {
		return n, fmt.Errorf("trace source: %w", err)
	}
	if err = w.Flush(); err != nil {
		return n, fmt.Errorf("flush: %w", err)
	}
	if err = f.Close(); err != nil {
		return n, fmt.Errorf("close: %w", err)
	}
	return n, nil
}

// run is the testable entry point: parses args, writes the requested
// trace, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("trace", "", "trace name, e.g. INT_xli")
		events  = fs.Int64("events", 1_000_000, "instructions to generate")
		out     = fs.String("o", "", "output file (default <trace>.capt)")
		list    = fs.Bool("list", false, "list trace names")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *version {
		fmt.Fprintln(stdout, buildinfo.String("tracegen"))
		return 0
	}
	if *list {
		for _, s := range capred.Traces() {
			fmt.Fprintln(stdout, s.Name)
		}
		return 0
	}
	spec, ok := capred.TraceByName(*name)
	if !ok {
		fmt.Fprintf(stderr, "tracegen: unknown trace %q; use -list\n", *name)
		return 2
	}
	path := *out
	if path == "" {
		path = spec.Name + ".capt"
	}
	n, err := writeTrace(path, capred.Limit(spec.Open(), *events))
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %d events of %s to %s\n", n, spec.Name, path)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
