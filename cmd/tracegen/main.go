// Command tracegen writes one of the 45 synthetic traces to a binary
// trace file readable by cmd/traceinfo and capred.NewTraceReader.
//
// Usage:
//
//	tracegen -trace INT_xli -events 1000000 -o int_xli.capt
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"capred"
)

func main() {
	var (
		name   = flag.String("trace", "", "trace name, e.g. INT_xli")
		events = flag.Int64("events", 1_000_000, "instructions to generate")
		out    = flag.String("o", "", "output file (default <trace>.capt)")
		list   = flag.Bool("list", false, "list trace names")
	)
	flag.Parse()

	if *list {
		for _, s := range capred.Traces() {
			fmt.Println(s.Name)
		}
		return
	}
	spec, ok := capred.TraceByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown trace %q; use -list\n", *name)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = spec.Name + ".capt"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	w := capred.NewTraceWriter(f)
	src := capred.Limit(spec.Open(), *events)
	var n int64
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Emit(ev); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		n++
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d events of %s to %s\n", n, spec.Name, path)
}
