// Command benchsweep measures what the replay cache buys a sweep and
// writes the result as JSON (BENCH_sweep.json by default, for the CI
// benchmark job and the numbers quoted in DESIGN.md).
//
// It reports two layers:
//
//   - drain: raw event-delivery throughput per trace — the live workload
//     generator, a cold cache open (materialise + first replay), and a
//     warm replay cursor — plus the cache's resident column cost in
//     bytes per event. The cursor must beat the generator or the cache
//     is pure memory overhead.
//
//   - sweep: wall-clock for a representative slice of the experiment
//     roster (baselines, Fig. 9, Fig. 12, prefetch — the generator-bound
//     and cpu-model-bound extremes) run streaming, then cached, then
//     cached with the grid scheduler at GOMAXPROCS workers, with the
//     cache's occupancy stats. The headline numbers are the speedups.
//
// Usage:
//
//	benchsweep [-events n] [-traces n] [-o file]
//	benchsweep -gate BENCH_sweep.json [-gate-drop 0.10]
//
// Gate mode reruns only the drain benchmark and compares the fresh
// warm-cursor throughput against the committed baseline's: a drop
// beyond the tolerance exits nonzero, which is how CI makes the perf
// trajectory an enforced invariant rather than an uploaded artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"capred"
)

type drainReport struct {
	Traces            int     `json:"traces"`
	EventsPerTrace    int64   `json:"events_per_trace"`
	GeneratorMEvS     float64 `json:"generator_mev_per_s"`
	ColdCacheMEvS     float64 `json:"cold_cache_mev_per_s"`
	WarmCursorMEvS    float64 `json:"warm_cursor_mev_per_s"`
	CursorVsGenerator float64 `json:"cursor_vs_generator"`
	// BytesPerEvent is the cache's resident column cost (26 B/event SoA
	// lanes), not the v3 encoding density — the cache stores decoded
	// columns, not bytes.
	BytesPerEvent float64 `json:"resident_bytes_per_event"`
}

type sweepReport struct {
	Experiments      []string `json:"experiments"`
	StreamingSeconds float64  `json:"streaming_seconds"`
	// CachedColdSeconds includes materialising all 45 streams; warm is a
	// second pass over the resident cache — what every experiment after
	// the first sees inside one capsim run.
	CachedColdSeconds float64 `json:"cached_cold_seconds"`
	CachedWarmSeconds float64 `json:"cached_warm_seconds"`
	SpeedupCold       float64 `json:"speedup_cold"`
	SpeedupWarm       float64 `json:"speedup_warm"`
	// The parallel row reruns the warm sweep with the scheduler sharding
	// each (trace, config) grid across GOMAXPROCS workers. Output is
	// bit-identical to serial (the golden suite enforces it); only the
	// wall clock moves, and only on multi-core hosts.
	Workers             int     `json:"workers"`
	ParallelWarmSeconds float64 `json:"parallel_warm_seconds"`
	SpeedupParallel     float64 `json:"speedup_parallel_vs_serial_warm"`
	CacheStreams        int     `json:"cache_streams"`
	CacheMiB            float64 `json:"cache_mib"`
	CacheHits           int64   `json:"cache_hits"`
}

// predictReport measures end-to-end prediction throughput (RunTrace
// over a warm replay cursor) for the hybrid and the 5-way tournament.
// The tournament figure is gated: its per-event cost is the price of
// the meta-predictor abstraction, and a regression here means the
// component fan-out or the chooser grew a hot-path cost.
type predictReport struct {
	Traces         int     `json:"traces"`
	EventsPerTrace int64   `json:"events_per_trace"`
	HybridMEvS     float64 `json:"hybrid_mev_per_s"`
	TournamentMEvS float64 `json:"tournament_mev_per_s"`
	// TournamentVsHybrid is the throughput ratio — the slowdown of
	// arbitrating five components instead of two hard-wired ones.
	TournamentVsHybrid float64 `json:"tournament_vs_hybrid"`
}

type report struct {
	Drain   drainReport   `json:"drain"`
	Predict predictReport `json:"predict"`
	Sweep   sweepReport   `json:"sweep"`
}

func main() {
	fs := flag.NewFlagSet("benchsweep", flag.ExitOnError)
	events := fs.Int64("events", 400_000, "events per trace")
	nTraces := fs.Int("traces", 8, "traces to drain-benchmark (0 = full roster)")
	out := fs.String("o", "BENCH_sweep.json", "output file (- for stdout)")
	gate := fs.String("gate", "", "baseline BENCH_sweep.json to gate against: rerun the drain benchmark and exit nonzero when warm-cursor throughput regresses past -gate-drop")
	gateDrop := fs.Float64("gate-drop", 0.10, "fractional warm-cursor drain regression tolerated by -gate")
	fs.Parse(os.Args[1:])

	if *gate != "" {
		os.Exit(gateDrain(*gate, *gateDrop, *events, *nTraces))
	}

	rep := report{
		Drain:   drainBench(*events, *nTraces),
		Predict: predictBench(*events, *nTraces),
		Sweep:   sweepBench(*events),
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	fmt.Printf("benchsweep: drain %.1f -> %.1f Mev/s (%.2fx), sweep %.1fs -> %.1fs warm (%.2fx), %.1fs at %d workers (%.2fx), wrote %s\n",
		rep.Drain.GeneratorMEvS, rep.Drain.WarmCursorMEvS, rep.Drain.CursorVsGenerator,
		rep.Sweep.StreamingSeconds, rep.Sweep.CachedWarmSeconds, rep.Sweep.SpeedupWarm,
		rep.Sweep.ParallelWarmSeconds, rep.Sweep.Workers, rep.Sweep.SpeedupParallel, *out)
}

// gateDrain is the CI regression gate: it reruns the drain and
// prediction benchmarks (best of three, to shave scheduler noise) and
// fails when a fresh number lands more than drop below the committed
// baseline's. Two figures gate: the warm-cursor drain (the rate the
// sweeps actually run at, which the SoA pipeline exists to protect) and
// the tournament prediction throughput (the meta-predictor's hot-path
// cost). The generator and cold figures move with workload-generation
// cost, which is not a regression of either.
func gateDrain(baselinePath string, drop float64, events int64, nTraces int) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep: gate:", err)
		return 2
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchsweep: gate: %s: %v\n", baselinePath, err)
		return 2
	}
	if base.Drain.WarmCursorMEvS <= 0 {
		fmt.Fprintf(os.Stderr, "benchsweep: gate: %s has no warm_cursor_mev_per_s baseline\n", baselinePath)
		return 2
	}
	var fresh float64
	for i := 0; i < 3; i++ {
		if r := drainBench(events, nTraces).WarmCursorMEvS; r > fresh {
			fresh = r
		}
	}
	floor := base.Drain.WarmCursorMEvS * (1 - drop)
	if fresh < floor {
		fmt.Fprintf(os.Stderr, "benchsweep: gate FAIL: warm-cursor drain %.1f Mev/s is below %.1f (baseline %.1f - %.0f%%)\n",
			fresh, floor, base.Drain.WarmCursorMEvS, drop*100)
		return 1
	}
	fmt.Printf("benchsweep: gate ok: warm-cursor drain %.1f Mev/s vs baseline %.1f (floor %.1f)\n",
		fresh, base.Drain.WarmCursorMEvS, floor)

	// Baselines written before the prediction benchmark existed have no
	// tournament figure; they gate on drain alone.
	if base.Predict.TournamentMEvS > 0 {
		var freshT float64
		for i := 0; i < 3; i++ {
			if r := predictBench(events, nTraces).TournamentMEvS; r > freshT {
				freshT = r
			}
		}
		floorT := base.Predict.TournamentMEvS * (1 - drop)
		if freshT < floorT {
			fmt.Fprintf(os.Stderr, "benchsweep: gate FAIL: tournament prediction %.1f Mev/s is below %.1f (baseline %.1f - %.0f%%)\n",
				freshT, floorT, base.Predict.TournamentMEvS, drop*100)
			return 1
		}
		fmt.Printf("benchsweep: gate ok: tournament prediction %.1f Mev/s vs baseline %.1f (floor %.1f)\n",
			freshT, base.Predict.TournamentMEvS, floorT)
	}
	return 0
}

// predictBench measures RunTrace throughput over warm replay cursors:
// the hybrid (the paper's configuration) and the full 5-way tournament.
func predictBench(events int64, nTraces int) predictReport {
	specs := capred.Traces()
	if nTraces > 0 && nTraces < len(specs) {
		specs = specs[:nTraces]
	}
	cache := capred.NewReplayCache(0)
	open := func(s capred.TraceSpec) capred.Source {
		return cache.Open(s.Name, func() capred.Source { return capred.Limit(s.Open(), events) })
	}
	var total int64
	for _, s := range specs {
		total += drain(open(s)) // warm the cache so both measurements replay
	}

	var hybridDur, tourDur time.Duration
	for _, s := range specs {
		t0 := time.Now()
		_, err := capred.RunTrace(open(s), capred.NewHybrid(capred.DefaultHybridConfig()), 0)
		hybridDur += time.Since(t0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep: predict:", err)
			os.Exit(1)
		}

		t0 = time.Now()
		if _, err := capred.RunTrace(open(s), capred.NewFullTournament(false), 0); err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep: predict:", err)
			os.Exit(1)
		}
		tourDur += time.Since(t0)
	}
	r := predictReport{
		Traces:         len(specs),
		EventsPerTrace: events,
		HybridMEvS:     float64(total) / hybridDur.Seconds() / 1e6,
		TournamentMEvS: float64(total) / tourDur.Seconds() / 1e6,
	}
	r.TournamentVsHybrid = r.TournamentMEvS / r.HybridMEvS
	return r
}

// drain pulls every event out of src through the block interface,
// mirroring the hot loops in the sim drivers.
func drain(src capred.Source) int64 {
	bs := capred.AsBlocks(src)
	b := capred.GetBlock()
	defer capred.PutBlock(b)
	var n int64
	for {
		k, ok := bs.NextBlock(b, capred.BlockLen)
		n += int64(k)
		if !ok {
			return n
		}
	}
}

func drainBench(events int64, nTraces int) drainReport {
	specs := capred.Traces()
	if nTraces > 0 && nTraces < len(specs) {
		specs = specs[:nTraces]
	}
	open := func(s capred.TraceSpec) capred.Source {
		return capred.Limit(s.Open(), events)
	}

	var genDur, coldDur, warmDur time.Duration
	var total int64
	cache := capred.NewReplayCache(0)
	for _, s := range specs {
		spec := s
		t0 := time.Now()
		total += drain(open(spec))
		genDur += time.Since(t0)

		t0 = time.Now()
		drain(cache.Open(spec.Name, func() capred.Source { return open(spec) }))
		coldDur += time.Since(t0)

		t0 = time.Now()
		drain(cache.Open(spec.Name, func() capred.Source { return open(spec) }))
		warmDur += time.Since(t0)
	}
	st := cache.Stats()
	mevs := func(d time.Duration) float64 {
		return float64(total) / d.Seconds() / 1e6
	}
	r := drainReport{
		Traces:         len(specs),
		EventsPerTrace: events,
		GeneratorMEvS:  mevs(genDur),
		ColdCacheMEvS:  mevs(coldDur),
		WarmCursorMEvS: mevs(warmDur),
		BytesPerEvent:  float64(st.Bytes) / float64(total),
	}
	r.CursorVsGenerator = r.WarmCursorMEvS / r.GeneratorMEvS
	return r
}

func sweepBench(events int64) sweepReport {
	names := []string{"baselines", "fig9", "fig12", "prefetch"}
	run := func(cfg capred.ExperimentConfig) float64 {
		t0 := time.Now()
		capred.RunBaselines(cfg)
		capred.Fig9(cfg)
		capred.Fig12(cfg)
		capred.RunPrefetch(cfg)
		return time.Since(t0).Seconds()
	}

	streaming := run(capred.ExperimentConfig{EventsPerTrace: events})

	cached := capred.ExperimentConfig{
		EventsPerTrace: events,
		ReplayCache:    capred.NewReplayCache(0),
	}
	cold := run(cached)
	warm := run(cached)

	par := cached
	par.Workers = runtime.GOMAXPROCS(0)
	parallel := run(par)
	st := cached.ReplayCache.Stats()

	return sweepReport{
		Experiments:         names,
		StreamingSeconds:    streaming,
		CachedColdSeconds:   cold,
		CachedWarmSeconds:   warm,
		SpeedupCold:         streaming / cold,
		SpeedupWarm:         streaming / warm,
		Workers:             par.Workers,
		ParallelWarmSeconds: parallel,
		SpeedupParallel:     warm / parallel,
		CacheStreams:        st.Entries,
		CacheMiB:            float64(st.Bytes) / (1 << 20),
		CacheHits:           st.Hits,
	}
}
