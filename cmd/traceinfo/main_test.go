package main

import (
	"os"
	"path/filepath"
	"testing"

	"capred"
)

// writeTempTrace materialises a small trace file for the tool tests.
func writeTempTrace(t *testing.T) string {
	t.Helper()
	spec, ok := capred.TraceByName("INT_go")
	if !ok {
		t.Fatal("INT_go missing")
	}
	path := filepath.Join(t.TempDir(), "t.capt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := capred.NewTraceWriter(f)
	src := capred.Limit(spec.Open(), 20_000)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTopLoads(t *testing.T) {
	path := writeTempTrace(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ips, counts, err := topLoads(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) == 0 || len(ips) != len(counts) {
		t.Fatalf("topLoads returned %d ips, %d counts", len(ips), len(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("counts not descending: %v", counts)
		}
	}
}

func TestStatsRoundTripThroughFile(t *testing.T) {
	path := writeTempTrace(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := capred.CollectStats(capred.NewTraceReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != 20_000 {
		t.Errorf("Total = %d, want 20000", stats.Total)
	}
	if stats.LoadIPs == 0 {
		t.Error("no static loads recorded")
	}
}
