package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"capred"
)

// writeTempTrace materialises a small trace file for the tool tests.
func writeTempTrace(t *testing.T) string {
	t.Helper()
	spec, ok := capred.TraceByName("INT_go")
	if !ok {
		t.Fatal("INT_go missing")
	}
	path := filepath.Join(t.TempDir(), "t.capt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := capred.NewTraceWriter(f)
	src := capred.Limit(spec.Open(), 20_000)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummarisesTrace(t *testing.T) {
	path := writeTempTrace(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-i", path, "-top", "5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "events: 20000") {
		t.Errorf("missing event count in:\n%s", out)
	}
	if !strings.Contains(out, "static loads:") {
		t.Errorf("missing static load summary in:\n%s", out)
	}
	if !strings.Contains(out, "top 5 static loads:") {
		t.Errorf("missing top-loads section in:\n%s", out)
	}
}

func TestRunFailsOnTruncatedTrace(t *testing.T) {
	path := writeTempTrace(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.capt")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-i", trunc}, &stdout, &stderr); code != 1 {
		t.Fatalf("truncated trace: exit %d (stdout %q), want 1", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "truncated") {
		t.Errorf("stderr %q does not name the truncation", stderr.String())
	}
	if strings.Contains(stdout.String(), "events:") {
		t.Errorf("partial stats printed despite the error:\n%s", stdout.String())
	}
}

func TestRunFailsOnBadMagic(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.capt")
	if err := os.WriteFile(bad, []byte("not a trace file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-i", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad magic: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "magic") {
		t.Errorf("stderr %q does not name the bad magic", stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{}, &out, &out); code != 2 {
		t.Fatalf("missing -i: exit %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &out); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"-i", "/no/such/file.capt"}, &out, &out); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit %d", code)
	}
	if !strings.HasPrefix(stdout.String(), "traceinfo ") {
		t.Fatalf("-version output %q", stdout.String())
	}
}

func TestStatsRoundTripThroughFile(t *testing.T) {
	path := writeTempTrace(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := capred.CollectStats(capred.NewTraceReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != 20_000 {
		t.Errorf("Total = %d, want 20000", stats.Total)
	}
	if stats.LoadIPs == 0 {
		t.Error("no static loads recorded")
	}
}
