// Command traceinfo summarises a binary trace file: event counts, static
// load footprint, per-load pattern classification and, optionally, the
// hottest static loads.
//
// Usage:
//
//	traceinfo -i int_xli.capt [-top 10]
//
// Any trace-source error — bad magic, truncated or corrupt event stream,
// I/O failure — aborts with a non-zero exit code; partial statistics are
// never presented as a complete summary.
//
// Exit codes: 0 clean; 1 trace or I/O error; 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"capred"
	"capred/internal/buildinfo"
)

// run is the testable entry point: parses args, summarises the trace,
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in      = fs.String("i", "", "input trace file")
		top     = fs.Int("top", 0, "also list the N hottest static loads")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("traceinfo"))
		return 0
	}
	if *in == "" {
		fmt.Fprintln(stderr, "traceinfo: -i required")
		return 2
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "traceinfo: %v\n", err)
		return 1
	}
	defer f.Close()

	stats, err := capred.CollectStats(capred.NewTraceReader(f))
	if err != nil {
		fmt.Fprintf(stderr, "traceinfo: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, stats)

	if *top > 0 {
		if _, err := f.Seek(0, 0); err != nil {
			fmt.Fprintf(stderr, "traceinfo: %v\n", err)
			return 1
		}
		ips, counts, err := capred.TopLoads(capred.NewTraceReader(f), *top)
		if err != nil {
			fmt.Fprintf(stderr, "traceinfo: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "top %d static loads:\n", len(ips))
		for i, ip := range ips {
			fmt.Fprintf(stdout, "  %#010x  %d\n", ip, counts[i])
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
