// Command traceinfo summarises a binary trace file: event counts, static
// load footprint, per-load pattern classification and, optionally, the
// hottest static loads.
//
// Usage:
//
//	traceinfo -i int_xli.capt [-top 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"capred"
)

func main() {
	var (
		in  = flag.String("i", "", "input trace file")
		top = flag.Int("top", 0, "also list the N hottest static loads")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceinfo: -i required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	stats, err := capred.CollectStats(capred.NewTraceReader(f))
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(stats)

	if *top > 0 {
		if _, err := f.Seek(0, 0); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			os.Exit(1)
		}
		ips, counts, err := topLoads(f, *top)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("top %d static loads:\n", len(ips))
		for i, ip := range ips {
			fmt.Printf("  %#010x  %d\n", ip, counts[i])
		}
	}
}

func topLoads(f *os.File, n int) ([]uint32, []int64, error) {
	src := capred.NewTraceReader(f)
	counts := map[uint32]int64{}
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if ev.Kind == capred.KindLoad {
			counts[ev.IP]++
		}
	}
	if err := src.Err(); err != nil {
		return nil, nil, err
	}
	var ips []uint32
	for ip := range counts {
		ips = append(ips, ip)
	}
	// Selection of the top n by count (n is small).
	for i := 0; i < len(ips) && i < n; i++ {
		best := i
		for j := i + 1; j < len(ips); j++ {
			if counts[ips[j]] > counts[ips[best]] {
				best = j
			}
		}
		ips[i], ips[best] = ips[best], ips[i]
	}
	if len(ips) > n {
		ips = ips[:n]
	}
	out := make([]int64, len(ips))
	for i, ip := range ips {
		out[i] = counts[ip]
	}
	return ips, out, nil
}
