package capred_test

// One benchmark per table/figure of the paper's evaluation. Each runs the
// corresponding experiment end to end (all 45 traces) and logs the figure
// table it regenerates, so
//
//	go test -bench=. -benchmem
//
// both times the harness and prints every reproduced artefact. The event
// budget trades precision for wall-clock; pass -bench with cmd/capsim
// -events 30000000 for the paper's full 30M-instruction traces.

import (
	"fmt"
	"testing"

	"capred"
)

// benchEvents is the per-trace instruction budget used by the benchmark
// harness; rates converge within a few points of the large-budget values.
const benchEvents = 150_000

// timingEvents is the budget for the (slower) timing-model figures.
const timingEvents = 60_000

func benchCfg(events int64) capred.ExperimentConfig {
	return capred.ExperimentConfig{EventsPerTrace: events}
}

type tabler interface{ String() string }

func runExperiment(b *testing.B, f func() tabler) {
	b.Helper()
	var t tabler
	for i := 0; i < b.N; i++ {
		t = f()
	}
	b.Log("\n" + t.String())
}

// BenchmarkFig5 regenerates Figure 5: prediction rate and accuracy of the
// enhanced stride, CAP and hybrid predictors per suite.
func BenchmarkFig5(b *testing.B) {
	runExperiment(b, func() tabler { return capred.Fig5(benchCfg(benchEvents)).Table() })
}

// BenchmarkFig6 regenerates Figure 6: hybrid prediction rate as a
// function of LB entries and associativity.
func BenchmarkFig6(b *testing.B) {
	runExperiment(b, func() tabler { return capred.Fig6(benchCfg(benchEvents)).Table() })
}

// BenchmarkFig7 regenerates Figure 7: per-trace speedup of the enhanced
// stride and hybrid predictors over no address prediction.
func BenchmarkFig7(b *testing.B) {
	runExperiment(b, func() tabler { return capred.Fig7(benchCfg(timingEvents)).Table() })
}

// BenchmarkFig8 regenerates Figure 8: the hybrid selector's state
// distribution and correct-selection rate.
func BenchmarkFig8(b *testing.B) {
	runExperiment(b, func() tabler { return capred.Fig8(benchCfg(benchEvents)).Table() })
}

// BenchmarkFig9 regenerates Figure 9: correct predictions as a function
// of history length, with and without global correlation.
func BenchmarkFig9(b *testing.B) {
	runExperiment(b, func() tabler { return capred.Fig9(benchCfg(benchEvents)).Table() })
}

// BenchmarkFig10 regenerates Figure 10: the influence of LT tags and
// control-flow indications on the CAP predictor.
func BenchmarkFig10(b *testing.B) {
	runExperiment(b, func() tabler { return capred.Fig10(benchCfg(benchEvents)).Table() })
}

// BenchmarkFig11 regenerates Figure 11: prediction rate and accuracy as a
// function of the prediction gap.
func BenchmarkFig11(b *testing.B) {
	runExperiment(b, func() tabler { return capred.Fig11(benchCfg(benchEvents)).Table() })
}

// BenchmarkFig12 regenerates Figure 12: per-suite speedup for an
// immediate update versus a prediction gap of 8.
func BenchmarkFig12(b *testing.B) {
	runExperiment(b, func() tabler { return capred.Fig12(benchCfg(timingEvents)).Table() })
}

// BenchmarkLTUpdatePolicy regenerates the §4.3 update-policy comparison.
func BenchmarkLTUpdatePolicy(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunUpdatePolicy(benchCfg(benchEvents)).Table() })
}

// BenchmarkLTSize regenerates the §4.2 LT-size sensitivity table.
func BenchmarkLTSize(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunLTSize(benchCfg(benchEvents)).Table() })
}

// BenchmarkBaselines regenerates the §1 predictor-family ladder.
func BenchmarkBaselines(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunBaselines(benchCfg(benchEvents)).Table() })
}

// BenchmarkControlBased regenerates the §3.6 control-based comparison.
func BenchmarkControlBased(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunControlBased(benchCfg(benchEvents)).Table() })
}

// BenchmarkAblations runs the DESIGN.md ablation table.
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunAblations(benchCfg(benchEvents)).Table() })
}

// BenchmarkProfileAssist runs the §6 future-work profile-feedback table.
func BenchmarkProfileAssist(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunProfileAssist(benchCfg(benchEvents)).Table() })
}

// BenchmarkAddressVsValue runs the §1 address-vs-value comparison.
func BenchmarkAddressVsValue(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunAddressVsValue(benchCfg(benchEvents)).Table() })
}

// BenchmarkPrefetch runs the §1.1 prefetching-vs-prediction comparison.
func BenchmarkPrefetch(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunPrefetch(benchCfg(timingEvents)).Table() })
}

// BenchmarkClassCoverage runs the §2 per-class coverage analysis.
func BenchmarkClassCoverage(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunClassCoverage(benchCfg(benchEvents)).Table() })
}

// BenchmarkWrongPath runs the §5.4 speculative-control-flow comparison.
func BenchmarkWrongPath(b *testing.B) {
	runExperiment(b, func() tabler { return capred.RunWrongPath(benchCfg(benchEvents)).Table() })
}

// Micro-benchmarks: per-prediction cost of each predictor, for users who
// embed the predictors rather than the harness.

func benchPredictor(b *testing.B, p capred.Predictor) {
	b.Helper()
	spec, ok := capred.TraceByName("INT_gcc")
	if !ok {
		b.Fatal("INT_gcc missing")
	}
	// Materialise a fixed load stream once.
	src := capred.Limit(spec.Open(), 200_000)
	type access struct {
		ref  capred.LoadRef
		addr uint32
	}
	var loads []access
	var ghr capred.GHR
	var path capred.PathHist
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		switch ev.Kind {
		case capred.KindBranch:
			ghr.Update(ev.Taken)
		case capred.KindCall:
			path.Push(ev.IP)
		case capred.KindLoad:
			loads = append(loads, access{
				ref:  capred.LoadRef{IP: ev.IP, Offset: ev.Offset, GHR: ghr.Value(), Path: path.Value()},
				addr: ev.Addr,
			})
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := loads[i%len(loads)]
		pr := p.Predict(a.ref)
		p.Resolve(a.ref, pr, a.addr)
	}
	b.ReportMetric(float64(len(loads)), "loads/trace")
}

// BenchmarkPredictLast measures the last-address predictor's per-load cost.
func BenchmarkPredictLast(b *testing.B) {
	benchPredictor(b, capred.NewLast(capred.DefaultLastConfig()))
}

// BenchmarkPredictStride measures the enhanced stride predictor's per-load cost.
func BenchmarkPredictStride(b *testing.B) {
	benchPredictor(b, capred.NewStride(capred.DefaultStrideConfig()))
}

// BenchmarkPredictCAP measures the CAP predictor's per-load cost.
func BenchmarkPredictCAP(b *testing.B) {
	benchPredictor(b, capred.NewCAP(capred.DefaultCAPConfig()))
}

// BenchmarkPredictHybrid measures the hybrid predictor's per-load cost.
func BenchmarkPredictHybrid(b *testing.B) {
	benchPredictor(b, capred.NewHybrid(capred.DefaultHybridConfig()))
}

// BenchmarkTraceGeneration measures the synthetic workload generator.
func BenchmarkTraceGeneration(b *testing.B) {
	spec, _ := capred.TraceByName("W95_cdw")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := capred.Limit(spec.Open(), 100_000)
		n := 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			n++
		}
		if n != 100_000 {
			b.Fatalf("generated %d events", n)
		}
	}
}

// BenchmarkTimingModel measures the out-of-order model's throughput.
func BenchmarkTimingModel(b *testing.B) {
	spec, _ := capred.TraceByName("GAM_duk")
	for i := 0; i < b.N; i++ {
		r := capred.RunMachine(capred.Limit(spec.Open(), 100_000), nil, 0, capred.DefaultMachineConfig())
		if r.Instructions != 100_000 {
			b.Fatal("short run")
		}
	}
}

// Example of the quickstart flow, kept compiling as documentation.
func Example() {
	p := capred.NewHybrid(capred.DefaultHybridConfig())
	spec, _ := capred.TraceByName("INT_xli")
	c, err := capred.RunTrace(capred.Limit(spec.Open(), 10_000), p, 0)
	fmt.Println(err == nil && c.Loads > 0)
	// Output: true
}
