// Package capred is a Go reproduction of "Correlated Load-Address
// Predictors" (Bekerman, Jourdan, Ronen, Kirshenboim, Rappoport, Yoaz,
// Weiser — ISCA 1999): the correlated context-based address predictor
// (CAP), the enhanced stride predictor, the hybrid CAP/stride predictor
// with a dynamic selector, the pipelined (prediction-gap) operating mode,
// and the full evaluation harness — synthetic workload suites standing in
// for the paper's 45 proprietary IA-32 traces, a two-level cache
// hierarchy, and a trace-driven out-of-order timing model.
//
// # Quick start
//
//	p := capred.NewHybrid(capred.DefaultHybridConfig())
//	spec, _ := capred.TraceByName("INT_xli")
//	counters, err := capred.RunTrace(capred.Limit(spec.Open(), 400_000), p, 0)
//	if err != nil {
//		log.Fatal(err) // decode error, injected fault, ...
//	}
//	fmt.Println(counters) // prediction rate, accuracy, ...
//
// Every figure and table of the paper's evaluation has a driver in this
// package (Fig5 … Fig12, UpdatePolicy, LTSize, Baselines, ControlBased,
// Ablations); each returns a result with a Table() renderer producing the
// same rows the paper reports. See EXPERIMENTS.md for measured-vs-paper
// numbers.
//
// # Failure model
//
// Every driver tolerates per-trace failures: a trace whose source errors,
// whose predictor panics, or whose run is cancelled is excluded from the
// aggregates, recorded in the result's Failures list, and reported in the
// rendered table's footer. RunTraceContext adds cancellation and
// deadlines; the fault-injecting sources (NewFailAfter, NewCorrupt,
// NewErrSource, NewHang) exercise these paths in tests. See DESIGN.md §8.
package capred

import (
	"capred/internal/cpu"
	"capred/internal/metrics"
	"capred/internal/pipeline"
	"capred/internal/predictor"
	"capred/internal/predictor/tournament"
	"capred/internal/prefetch"
	"capred/internal/sim"
	"capred/internal/trace"
	"capred/internal/valuepred"
	"capred/internal/workload"
)

// Predictor interface and prediction types.
type (
	// Predictor is a load-address predictor (Predict / Resolve / Name).
	Predictor = predictor.Predictor
	// Prediction is the outcome of Predict for one dynamic load.
	Prediction = predictor.Prediction
	// ComponentPrediction is one hybrid component's opinion.
	ComponentPrediction = predictor.ComponentPrediction
	// LoadRef identifies a dynamic load at prediction time.
	LoadRef = predictor.LoadRef
	// Component identifies a hybrid component (stride or CAP).
	Component = predictor.Component
	// Squasher is implemented by predictors supporting wrong-path
	// recovery (§5.4).
	Squasher = predictor.Squasher
	// GHR is the global branch-history register.
	GHR = predictor.GHR
	// PathHist is the call-path history register.
	PathHist = predictor.PathHist
)

// Predictor configurations.
type (
	// LastConfig configures the last-address baseline predictor.
	LastConfig = predictor.LastConfig
	// StrideConfig configures the (basic or enhanced) stride predictor.
	StrideConfig = predictor.StrideConfig
	// CAPConfig configures the context-based address predictor (§3).
	CAPConfig = predictor.CAPConfig
	// HybridConfig configures the hybrid CAP/stride predictor (§3.7).
	HybridConfig = predictor.HybridConfig
	// ControlConfig configures the §3.6 control-based predictors.
	ControlConfig = predictor.ControlConfig
	// Profile maps static loads to expected address-pattern classes.
	Profile = predictor.Profile
	// Profiler builds a Profile from an observed address stream.
	Profiler = predictor.Profiler
	// LoadClass is a profiled load's pattern class.
	LoadClass = predictor.LoadClass
	// CFConfig configures the control-flow indications mechanism (§3.4).
	CFConfig = predictor.CFConfig
	// UpdatePolicy selects the hybrid's LT update policy (§4.3).
	UpdatePolicy = predictor.UpdatePolicy
)

// Predictor components and selector states.
const (
	CompNone     = predictor.CompNone
	CompStride   = predictor.CompStride
	CompCAP      = predictor.CompCAP
	CompLast     = predictor.CompLast
	CompMarkov   = predictor.CompMarkov
	CompDelta2   = predictor.CompDelta2
	CompCallPath = predictor.CompCallPath

	SelStrongStride = predictor.SelStrongStride
	SelWeakStride   = predictor.SelWeakStride
	SelWeakCAP      = predictor.SelWeakCAP
	SelStrongCAP    = predictor.SelStrongCAP

	UpdateAlways               = predictor.UpdateAlways
	UpdateUnlessStrideCorrect  = predictor.UpdateUnlessStrideCorrect
	UpdateUnlessStrideSelected = predictor.UpdateUnlessStrideSelected

	ClassUnknown   = predictor.ClassUnknown
	ClassConstant  = predictor.ClassConstant
	ClassStride    = predictor.ClassStride
	ClassContext   = predictor.ClassContext
	ClassIrregular = predictor.ClassIrregular
)

// Predictor constructors and defaults.
var (
	NewLast              = predictor.NewLast
	NewStride            = predictor.NewStride
	NewCAP               = predictor.NewCAP
	NewHybrid            = predictor.NewHybrid
	NewControl           = predictor.NewControl
	NewProfiler          = predictor.NewProfiler
	NewProfiled          = predictor.NewProfiled
	DefaultLastConfig    = predictor.DefaultLastConfig
	DefaultStrideConfig  = predictor.DefaultStrideConfig
	BasicStrideConfig    = predictor.BasicStrideConfig
	DefaultCAPConfig     = predictor.DefaultCAPConfig
	DefaultHybridConfig  = predictor.DefaultHybridConfig
	DefaultControlConfig = predictor.DefaultControlConfig
	NoCF                 = predictor.NoCF
)

// Tournament meta-predictor: N-way component arbitration behind the
// standard Predictor interface. A two-way stride+CAP tournament
// (NewPaperPairTournament) is decision-identical to NewHybrid; the full
// lineup (NewFullTournament) adds the Markov stride-history, delta-delta
// and call-path-context components.
type (
	// Tournament is the N-way meta-predictor.
	Tournament = tournament.Tournament
	// TournamentConfig sizes the tournament's chooser.
	TournamentConfig = tournament.Config
	// TournamentComponent is one tournament entrant (Predict / Resolve /
	// Squash with per-component opinions).
	TournamentComponent = tournament.Component
	// ComponentStat is one component's selection statistics.
	ComponentStat = tournament.ComponentStat
	// MarkovConfig configures the Markov stride-history component.
	MarkovConfig = tournament.MarkovConfig
	// Delta2Config configures the delta-delta (acceleration) component.
	Delta2Config = tournament.Delta2Config
	// CallPathConfig configures the call-path-context component.
	CallPathConfig = tournament.CallPathConfig
)

// Tournament constructors.
var (
	NewTournament            = tournament.New
	NewNamedTournament       = tournament.NewNamed
	NewFullTournament        = tournament.NewFull
	NewPaperPairTournament   = tournament.NewPaperPair
	NewTournamentComponent   = tournament.NewComponent
	TournamentComponentNames = tournament.ComponentNames
	DefaultTournamentConfig  = tournament.DefaultConfig
	NewStrideComponent       = predictor.NewStrideComponent
	NewCAPComponent          = predictor.NewCAPComponent
	NewLastComponent         = predictor.NewLastComponent
	NewMarkov                = tournament.NewMarkov
	NewDelta2                = tournament.NewDelta2
	NewCallPath              = tournament.NewCallPath
	DefaultMarkovConfig      = tournament.DefaultMarkovConfig
	DefaultDelta2Config      = tournament.DefaultDelta2Config
	DefaultCallPathConfig    = tournament.DefaultCallPathConfig
)

// Trace model.
type (
	// Event is one dynamic instruction in a trace.
	Event = trace.Event
	// EventKind discriminates trace events.
	EventKind = trace.Kind
	// Source is a stream of trace events.
	Source = trace.Source
	// BatchSource is a Source that can also deliver events in batches.
	BatchSource = trace.BatchSource
	// Block is a struct-of-arrays batch of events (the hot-path form).
	Block = trace.Block
	// BlockSource is a Source that can also deliver events as Blocks.
	BlockSource = trace.BlockSource
	// Sink consumes trace events.
	Sink = trace.Sink
	// TraceStats summarises a trace.
	TraceStats = trace.Stats
	// ReplayCache materialises trace streams once and replays them.
	ReplayCache = trace.ReplayCache
	// ReplayStats reports a ReplayCache's occupancy and hit counts.
	ReplayStats = trace.ReplayStats
)

// Event kinds.
const (
	KindALU    = trace.KindALU
	KindLoad   = trace.KindLoad
	KindStore  = trace.KindStore
	KindBranch = trace.KindBranch
	KindCall   = trace.KindCall
	KindReturn = trace.KindReturn

	// BlockLen is the standard block capacity of the hot drain loops.
	BlockLen = trace.BlockLen
	// KindTakenBit flags a taken branch in a Block's KindTaken column.
	KindTakenBit = trace.KindTakenBit
)

// Trace utilities.
var (
	// NewTraceWriter encodes events to the binary trace format.
	NewTraceWriter = trace.NewWriter
	// NewTraceReader decodes a binary trace file as a Source.
	NewTraceReader = trace.NewReader
	// Limit truncates a source after n events.
	Limit = trace.NewLimit
	// CollectStats consumes a source and summarises it.
	CollectStats = trace.Collect
	// TopLoads returns the hottest static loads of a source by dynamic
	// execution count.
	TopLoads = trace.TopLoads
	// AsBatch adapts any Source to batch delivery.
	AsBatch = trace.AsBatch
	// AsBlocks adapts any Source to struct-of-arrays block delivery.
	AsBlocks = trace.AsBlocks
	// NewBlock allocates an empty block with pre-sized columns.
	NewBlock = trace.NewBlock
	// GetBlock and PutBlock recycle standard-capacity blocks through a
	// pool, keeping steady-state drain loops allocation-free.
	GetBlock = trace.GetBlock
	PutBlock = trace.PutBlock
	// NewReplayCache builds a replay cache with a byte budget (0 = no
	// limit); attach it to an ExperimentConfig to materialise each trace
	// once and replay it across passes.
	NewReplayCache = trace.NewReplayCache
)

// Fault injection: composable Source wrappers for testing how the
// harness degrades when traces misbehave.
var (
	// NewFailAfter yields n events, then fails with an error.
	NewFailAfter = trace.NewFailAfter
	// NewCorrupt deterministically corrupts every k-th event.
	NewCorrupt = trace.NewCorrupt
	// NewErrSource fails on the first Next call.
	NewErrSource = trace.NewErrSource
	// NewHang blocks in Next until the context is cancelled.
	NewHang = trace.NewHang
	// Transient marks an error as retryable by the run layer.
	Transient = trace.Transient
	// IsTransient reports whether an error is marked retryable.
	IsTransient = trace.IsTransient
	// FlakyOpen wraps an open function to fail its first k calls.
	FlakyOpen = trace.FlakyOpen
)

// ErrInjected is the default error produced by the fault-injecting
// sources.
var ErrInjected = trace.ErrInjected

// Workloads: the 45 synthetic traces standing in for the paper's
// evaluation traces, plus the building blocks to compose custom ones.
type (
	// TraceSpec names one synthetic trace of the 45-trace roster.
	TraceSpec = workload.TraceSpec
	// Generator interleaves workload behaviours into a trace Source.
	Generator = workload.Generator
	// Behavior is one simulated program component.
	Behavior = workload.Behavior
	// Heap is the generator's data address space.
	Heap = workload.Heap
)

// Workload constructors.
var (
	Traces        = workload.Traces
	TracesBySuite = workload.BySuite
	TraceByName   = workload.ByName
	SuiteNames    = workload.SuiteNames
	NewGenerator  = workload.NewGenerator

	NewGlobalScalars  = workload.NewGlobalScalars
	NewStackFrame     = workload.NewStackFrame
	NewArrayWalk      = workload.NewArrayWalk
	NewShortLoop      = workload.NewShortLoop
	NewLinkedList     = workload.NewLinkedList
	NewLinkedListOpts = workload.NewLinkedListOpts
	NewDoubleList     = workload.NewDoubleList
	NewBinaryTree     = workload.NewBinaryTree
	NewCallSites      = workload.NewCallSites
	NewHashTable      = workload.NewHashTable
	NewRandomWalk     = workload.NewRandomWalk
)

// Metrics and experiment drivers.
type (
	// Counters aggregates per-load prediction outcomes.
	Counters = metrics.Counters
	// Rates is the read interface shared by Counters and Mean.
	Rates = metrics.Rates
	// Mean is the equal-weight arithmetic mean of per-trace rates; the
	// figure tables' "Average" row.
	Mean = metrics.Mean
	// ExperimentConfig scales the experiment drivers.
	ExperimentConfig = sim.Config
	// Factory builds one fresh predictor per trace run.
	Factory = sim.Factory
	// TraceFailure records one trace run that did not complete.
	TraceFailure = sim.TraceFailure
	// FailureSet aggregates the failures of one experiment run.
	FailureSet = sim.FailureSet
	// PanicError wraps a recovered predictor panic with its stack.
	PanicError = sim.PanicError
	// Experiment is one registered experiment driver (name, description,
	// runner).
	Experiment = sim.Experiment
	// ExperimentResult is the interface every experiment result satisfies:
	// a Table() renderer plus the Failed() trace list.
	ExperimentResult = sim.Result
)

// Experiment registry: the same roster capsim, benchsweep and the golden
// regression tests iterate.
var (
	// Experiments lists every registered experiment, sorted by name.
	Experiments = sim.Experiments
	// ExperimentByName looks an experiment up by its CLI name.
	ExperimentByName = sim.ExperimentByName
)

// Experiment drivers — one per paper figure/table. Each result type has a
// Table() method rendering the figure's rows.
var (
	DefaultExperimentConfig = sim.DefaultConfig
	RunTrace                = sim.RunTrace
	RunTraceContext         = sim.RunTraceContext
	Fig5                    = sim.Fig5
	Fig6                    = sim.Fig6
	Fig7                    = sim.Fig7
	Fig8                    = sim.Fig8
	Fig9                    = sim.Fig9
	Fig10                   = sim.Fig10
	Fig11                   = sim.Fig11
	Fig12                   = sim.Fig12
	RunUpdatePolicy         = sim.UpdatePolicy
	RunLTSize               = sim.LTSize
	RunBaselines            = sim.Baselines
	RunControlBased         = sim.ControlBased
	RunAblations            = sim.Ablations
	RunProfileAssist        = sim.ProfileAssist
	RunAddressVsValue       = sim.AddressVsValue
	RunPrefetch             = sim.Prefetch
	RunClassCoverage        = sim.ClassCoverage
	RunWrongPath            = sim.WrongPath
	RunTournament           = sim.Tournament
)

// Pipelined operation (§5).
type (
	// Gap defers prediction resolution by a fixed number of loads.
	Gap = pipeline.Gap
)

// NewGap wraps a predictor with a prediction gap; build the predictor in
// speculative mode when depth > 0.
var NewGap = pipeline.New

// Value prediction (§1's comparison point) and data prefetching (§1.1).
type (
	// ValuePredictor is a load-value predictor.
	ValuePredictor = valuepred.Predictor
	// ValueConfig sizes the value predictors.
	ValueConfig = valuepred.Config
	// Prefetcher proposes cache-warming addresses from the load stream.
	Prefetcher = prefetch.Prefetcher
	// RPTConfig configures the Baer/Chen stride prefetcher.
	RPTConfig = prefetch.RPTConfig
)

// Value-prediction and prefetching constructors.
var (
	NewLastValue       = valuepred.NewLast
	NewStrideValue     = valuepred.NewStride
	NewContextValue    = valuepred.NewContext
	NewHybridValue     = valuepred.NewHybrid
	DefaultValueConfig = valuepred.DefaultConfig
	NewRPT             = prefetch.NewRPT
	NewNextLine        = prefetch.NewNextLine
	DefaultRPTConfig   = prefetch.DefaultRPTConfig
)

// Timing model (§4.1) for the speedup figures.
type (
	// MachineConfig parameterises the out-of-order timing model.
	MachineConfig = cpu.Config
	// MachineResult reports a timing run's outcome.
	MachineResult = cpu.Result
)

// Timing-model entry points.
var (
	DefaultMachineConfig = cpu.DefaultConfig
	RunMachine           = cpu.Run
)
