module capred

go 1.22
