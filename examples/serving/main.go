// The serving example drives capserve's HTTP API end to end: it starts
// the server in-process on a loopback port, opens a prediction session
// bound to the paper's hybrid predictor, streams a synthetic trace at it
// in small chunked POSTs, and shows that the counters the server hands
// back are bit-identical to an offline RunTrace over the same events.
// It then submits an experiment to the async job queue, polls it to
// completion, and prints the rendered table.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"capred"
	"capred/internal/load"
	"capred/internal/server"
)

const (
	traceName = "INT_xli"
	events    = 60_000
	chunk     = 8 << 10 // stream in 8 KiB POSTs to exercise re-chunking
)

// sessionView mirrors the wire shape of GET/DELETE /v1/sessions/{id}.
type sessionView struct {
	ID       string          `json:"id"`
	Events   int64           `json:"events"`
	Batches  int64           `json:"batches"`
	Counters capred.Counters `json:"counters"`
}

// batchView mirrors the wire shape of POST /v1/sessions/{id}/events.
type batchView struct {
	Events   int64           `json:"events"`
	Total    int64           `json:"total_events"`
	Batches  int64           `json:"batches"`
	Counters capred.Counters `json:"counters"`
}

// jobView mirrors the wire shape of GET /v1/jobs/{id}.
type jobView struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	ShardsDone  int64  `json:"shards_done"`
	ShardsTotal int64  `json:"shards_total"`
	Error       string `json:"error,omitempty"`
}

// apiClient is a capserve client that cooperates with the server's
// backpressure: 429 replies are retried after the server's Retry-After
// hint (bounded attempts), and oversized event batches (413) are split
// and resent in halves. Sleeping is injectable so tests can assert the
// waits without waiting.
type apiClient struct {
	hc       *http.Client
	sleep    func(time.Duration)
	maxTries int // attempts per request before giving up on 429s
}

func newClient() *apiClient {
	return &apiClient{hc: http.DefaultClient, sleep: time.Sleep, maxTries: 10}
}

// retryAfter parses the server's Retry-After hint. An absent hint falls
// back to half a second; a malformed one is an error — a client that
// silently invents a backoff hides a broken server from the one party
// positioned to notice.
func retryAfter(resp *http.Response) (time.Duration, error) {
	d, ok, err := load.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	if err != nil {
		return 0, fmt.Errorf("%s: %w", resp.Request.URL, err)
	}
	if !ok {
		return 500 * time.Millisecond, nil
	}
	return d, nil
}

// statusError is a non-2xx reply, keeping the code inspectable.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// call issues one request and decodes the JSON reply into out (when
// non-nil). 429 responses are retried per the server's Retry-After;
// any other non-2xx status fails with a *statusError.
func (c *apiClient) call(method, url string, body []byte, out any) error {
	var lastErr error
	for try := 0; try < c.maxTries; try++ {
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			lastErr = &statusError{resp.StatusCode,
				fmt.Sprintf("%s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(data))}
			wait, err := retryAfter(resp)
			if err != nil {
				return err
			}
			c.sleep(wait)
			continue
		}
		if resp.StatusCode/100 != 2 {
			return &statusError{resp.StatusCode,
				fmt.Sprintf("%s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(data))}
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return fmt.Errorf("gave up after %d attempts: %w", c.maxTries, lastErr)
}

// postEvents streams one chunk of v3 trace bytes at a session,
// splitting the chunk in half on 413 (the server buffers partial
// events across POSTs, so any byte split yields the same counters).
// The final batch reply of the sequence is decoded into out.
func (c *apiClient) postEvents(url string, data []byte, out *batchView) error {
	err := c.call("POST", url, data, out)
	var se *statusError
	if err == nil || !errors.As(err, &se) ||
		se.status != http.StatusRequestEntityTooLarge || len(data) < 2 {
		return err
	}
	half := len(data) / 2
	if err := c.postEvents(url, data[:half], out); err != nil {
		return err
	}
	return c.postEvents(url, data[half:], out)
}

// encodeTrace renders n events of the named trace in the v3 binary
// format — the same bytes tracegen would write to a file.
func encodeTrace(name string, n int64) []byte {
	spec, ok := capred.TraceByName(name)
	if !ok {
		log.Fatalf("unknown trace %q", name)
	}
	var buf bytes.Buffer
	w := capred.NewTraceWriter(&buf)
	src := capred.Limit(spec.Open(), n)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Emit(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func main() {
	// Start capserve in-process. Everything below this block is a plain
	// HTTP client and would work identically against `capserve -addr`.
	cfg := server.DefaultConfig()
	cfg.JobEvents = 50_000 // keep the demo job quick
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("capserve listening on %s\n\n", ln.Addr())
	c := newClient()

	// Open a session bound to the hybrid (stride + CAP) predictor.
	body, _ := json.Marshal(map[string]any{"predictor": "hybrid"})
	var sess sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &sess); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened session %s (predictor=hybrid)\n", sess.ID)

	// Stream the trace bytes in chunks. Chunk boundaries are arbitrary:
	// the server buffers partial events across POSTs, so any split of the
	// byte stream yields the same counters.
	data := encodeTrace(traceName, events)
	var last batchView
	for off := 0; off < len(data); off += chunk {
		end := min(off+chunk, len(data))
		url := base + "/v1/sessions/" + sess.ID + "/events"
		if err := c.postEvents(url, data[off:end], &last); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("streamed %s: %d loads over %d batches\n",
		traceName, last.Counters.Loads, last.Batches)

	// Close the session; the DELETE reply carries the final counters.
	var final sessionView
	if err := c.call("DELETE", base+"/v1/sessions/"+sess.ID, nil, &final); err != nil {
		log.Fatal(err)
	}

	// The same events through the offline path must agree bit for bit:
	// sessions and RunTrace share one per-event stepper.
	p := capred.NewHybrid(capred.DefaultHybridConfig())
	spec, _ := capred.TraceByName(traceName)
	want, err := capred.RunTrace(capred.Limit(spec.Open(), events), p, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served  accuracy: %6.2f%%  (%d/%d correct)\n",
		100*float64(final.Counters.Correct)/float64(final.Counters.Loads),
		final.Counters.Correct, final.Counters.Loads)
	fmt.Printf("offline accuracy: %6.2f%%  (%d/%d correct)\n",
		100*float64(want.Correct)/float64(want.Loads), want.Correct, want.Loads)
	if final.Counters != want {
		log.Fatalf("served counters diverge from offline RunTrace:\nserved  %+v\noffline %+v",
			final.Counters, want)
	}
	fmt.Println("served counters are bit-identical to offline RunTrace")

	// Same protocol, bigger predictor: a tournament session puts all five
	// components (stride, CAP, Markov, delta-delta, call-path) behind one
	// meta-chooser. The wire contract is unchanged — and so is the
	// bit-for-bit guarantee against the offline path.
	body, _ = json.Marshal(map[string]any{"predictor": "tournament"})
	var tsess sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &tsess); err != nil {
		log.Fatal(err)
	}
	for off := 0; off < len(data); off += chunk {
		end := min(off+chunk, len(data))
		url := base + "/v1/sessions/" + tsess.ID + "/events"
		if err := c.postEvents(url, data[off:end], &last); err != nil {
			log.Fatal(err)
		}
	}
	var tfinal sessionView
	if err := c.call("DELETE", base+"/v1/sessions/"+tsess.ID, nil, &tfinal); err != nil {
		log.Fatal(err)
	}
	twant, err := capred.RunTrace(capred.Limit(spec.Open(), events), capred.NewFullTournament(false), 0)
	if err != nil {
		log.Fatal(err)
	}
	if tfinal.Counters != twant {
		log.Fatalf("tournament session counters diverge from offline RunTrace:\nserved  %+v\noffline %+v",
			tfinal.Counters, twant)
	}
	fmt.Printf("\ntournament session: %6.2f%% correct (%d/%d), bit-identical to offline RunTrace\n",
		100*float64(tfinal.Counters.Correct)/float64(tfinal.Counters.Loads),
		tfinal.Counters.Correct, tfinal.Counters.Loads)

	// Every speculative access the session made was attributed to exactly
	// one winning component on /metrics; show where the chooser spent them.
	resp0, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp0.Body)
	resp0.Body.Close()
	for _, line := range strings.Split(string(scrape), "\n") {
		if strings.HasPrefix(line, "capserve_tournament_selected_total{") {
			fmt.Println("  " + line)
		}
	}

	// Now the job queue: submit a registry experiment, poll until done,
	// fetch the rendered table.
	body, _ = json.Marshal(server.JobRequest{Experiment: "baselines"})
	var job jobView
	if err := c.call("POST", base+"/v1/jobs", body, &job); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted job %s (experiment=baselines)\n", job.ID)
	for job.State == "queued" || job.State == "running" {
		time.Sleep(100 * time.Millisecond)
		if err := c.call("GET", base+"/v1/jobs/"+job.ID, nil, &job); err != nil {
			log.Fatal(err)
		}
	}
	if job.State != "done" {
		log.Fatalf("job %s: %s: %s", job.ID, job.State, job.Error)
	}
	fmt.Printf("job finished (%d/%d shards); table:\n\n", job.ShardsDone, job.ShardsTotal)
	req, _ := http.NewRequest("GET", base+"/v1/jobs/"+job.ID+"/table", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	table, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Print(string(table))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained cleanly")
}
