package main

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"capred"
	"capred/internal/server"
)

// startServer runs capserve in-process and returns its base URL.
func startServer(t *testing.T, cfg server.Config) string {
	t.Helper()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return "http://" + ln.Addr().String()
}

// TestClientHonorsRetryAfter: a session-limited server answers 429 +
// Retry-After; the client must wait the advertised delay and retry
// until capacity frees up, not fail on the first 429.
func TestClientHonorsRetryAfter(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.MaxSessions = 1
	base := startServer(t, cfg)

	c := newClient()
	body, _ := json.Marshal(map[string]any{"predictor": "hybrid"})
	var first sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &first); err != nil {
		t.Fatalf("opening first session: %v", err)
	}
	// Feed the session a small valid batch so its close (drain) succeeds.
	var bv batchView
	if err := c.postEvents(base+"/v1/sessions/"+first.ID+"/events", encodeTrace(traceName, 100), &bv); err != nil {
		t.Fatalf("priming first session: %v", err)
	}

	// The second open hits the session limit. The injected sleep records
	// the server's hint and frees capacity by closing the first session,
	// so the retry must then succeed.
	var slept []time.Duration
	c.sleep = func(d time.Duration) {
		slept = append(slept, d)
		if err := c.call("DELETE", base+"/v1/sessions/"+first.ID, nil, nil); err != nil {
			t.Errorf("closing first session: %v", err)
		}
	}
	var second sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &second); err != nil {
		t.Fatalf("second session never admitted: %v", err)
	}
	if len(slept) == 0 {
		t.Fatal("client never backed off on 429")
	}
	// The server advertises Retry-After: 1.
	if slept[0] != time.Second {
		t.Fatalf("first backoff = %v, want 1s from the Retry-After header", slept[0])
	}
}

// TestClientGivesUpAfterBudget: persistent 429s must end in an error
// after maxTries, not an unbounded retry loop.
func TestClientGivesUpAfterBudget(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.MaxSessions = 1
	base := startServer(t, cfg)

	c := newClient()
	body, _ := json.Marshal(map[string]any{"predictor": "hybrid"})
	var first sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &first); err != nil {
		t.Fatal(err)
	}

	c.maxTries = 3
	sleeps := 0
	c.sleep = func(time.Duration) { sleeps++ } // capacity never frees
	if err := c.call("POST", base+"/v1/sessions", body, nil); err == nil {
		t.Fatal("expected an error once the retry budget was spent")
	}
	if sleeps != 3 {
		t.Fatalf("slept %d times, want 3 (one per attempt)", sleeps)
	}
}

// TestClientSplitsOversizedBatch: a server with a tiny body bound
// answers 413; the client must split the batch and deliver every
// event, ending with counters bit-identical to the offline run.
func TestClientSplitsOversizedBatch(t *testing.T) {
	const n = 20_000
	cfg := server.DefaultConfig()
	cfg.MaxBatchBytes = 512 // far below the test's chunk size
	base := startServer(t, cfg)

	c := newClient()
	c.sleep = func(time.Duration) {}
	body, _ := json.Marshal(map[string]any{"predictor": "hybrid"})
	var sess sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &sess); err != nil {
		t.Fatal(err)
	}

	// One oversized chunk (the whole trace); postEvents must recurse
	// down to acceptable slices without dropping or reordering bytes.
	data := encodeTrace(traceName, n)
	var last batchView
	if err := c.postEvents(base+"/v1/sessions/"+sess.ID+"/events", data, &last); err != nil {
		t.Fatalf("streaming with splits: %v", err)
	}
	var final sessionView
	if err := c.call("DELETE", base+"/v1/sessions/"+sess.ID, nil, &final); err != nil {
		t.Fatal(err)
	}

	spec, _ := capred.TraceByName(traceName)
	p := capred.NewHybrid(capred.DefaultHybridConfig())
	want, err := capred.RunTrace(capred.Limit(spec.Open(), n), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.Counters != want {
		t.Fatalf("split-streamed counters diverge from offline run:\nserved  %+v\noffline %+v",
			final.Counters, want)
	}
}
