package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"capred"
	"capred/internal/server"
)

// startServer runs capserve in-process and returns its base URL.
func startServer(t *testing.T, cfg server.Config) string {
	t.Helper()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return "http://" + ln.Addr().String()
}

// TestClientHonorsRetryAfter: a session-limited server answers 429 +
// Retry-After; the client must wait the advertised delay and retry
// until capacity frees up, not fail on the first 429.
func TestClientHonorsRetryAfter(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.MaxSessions = 1
	base := startServer(t, cfg)

	c := newClient()
	body, _ := json.Marshal(map[string]any{"predictor": "hybrid"})
	var first sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &first); err != nil {
		t.Fatalf("opening first session: %v", err)
	}
	// Feed the session a small valid batch so its close (drain) succeeds.
	var bv batchView
	if err := c.postEvents(base+"/v1/sessions/"+first.ID+"/events", encodeTrace(traceName, 100), &bv); err != nil {
		t.Fatalf("priming first session: %v", err)
	}

	// The second open hits the session limit. The injected sleep records
	// the server's hint and frees capacity by closing the first session,
	// so the retry must then succeed.
	var slept []time.Duration
	c.sleep = func(d time.Duration) {
		slept = append(slept, d)
		if err := c.call("DELETE", base+"/v1/sessions/"+first.ID, nil, nil); err != nil {
			t.Errorf("closing first session: %v", err)
		}
	}
	var second sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &second); err != nil {
		t.Fatalf("second session never admitted: %v", err)
	}
	if len(slept) == 0 {
		t.Fatal("client never backed off on 429")
	}
	// The server advertises Retry-After: 1.
	if slept[0] != time.Second {
		t.Fatalf("first backoff = %v, want 1s from the Retry-After header", slept[0])
	}
}

// TestClientGivesUpAfterBudget: persistent 429s must end in an error
// after maxTries, not an unbounded retry loop.
func TestClientGivesUpAfterBudget(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.MaxSessions = 1
	base := startServer(t, cfg)

	c := newClient()
	body, _ := json.Marshal(map[string]any{"predictor": "hybrid"})
	var first sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &first); err != nil {
		t.Fatal(err)
	}

	c.maxTries = 3
	sleeps := 0
	c.sleep = func(time.Duration) { sleeps++ } // capacity never frees
	if err := c.call("POST", base+"/v1/sessions", body, nil); err == nil {
		t.Fatal("expected an error once the retry budget was spent")
	}
	if sleeps != 3 {
		t.Fatalf("slept %d times, want 3 (one per attempt)", sleeps)
	}
}

// TestClientSurfacesMalformedRetryAfter: a 429 whose Retry-After is
// garbage must fail the call with a parse error — the old client
// silently defaulted to 500ms, hiding the broken header. Regression for
// the strict load.ParseRetryAfter parsing.
func TestClientSurfacesMalformedRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "soon")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := newClient()
	slept := 0
	c.sleep = func(time.Duration) { slept++ }
	err := c.call("POST", ts.URL+"/v1/sessions", nil, nil)
	if err == nil {
		t.Fatal("expected an error for the malformed Retry-After header")
	}
	if !strings.Contains(err.Error(), "Retry-After") {
		t.Fatalf("error %q does not name the malformed Retry-After header", err)
	}
	if slept != 0 {
		t.Fatalf("client slept %d times on a malformed hint; it must surface the error, not invent a backoff", slept)
	}
}

// TestClientAcceptsHTTPDateRetryAfter: the RFC 9110 HTTP-date form is a
// valid hint and must be honoured, not rejected.
func TestClientAcceptsHTTPDateRetryAfter(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	c := newClient()
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	if err := c.call("POST", ts.URL+"/v1/sessions", nil, nil); err != nil {
		t.Fatalf("HTTP-date Retry-After must be honoured, got error: %v", err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want exactly 1", len(slept))
	}
	if slept[0] <= 0 || slept[0] > 2*time.Second {
		t.Fatalf("backoff %v outside (0, 2s] for a date 2s out", slept[0])
	}
}

// TestTournamentSessionMatchesOffline pins the example's tournament
// claim: a tournament session streamed over the wire in client-sized
// chunks ends with counters bit-identical to an offline RunTrace over
// the same events with an identically built tournament.
func TestTournamentSessionMatchesOffline(t *testing.T) {
	const n = 20_000
	base := startServer(t, server.DefaultConfig())

	c := newClient()
	body, _ := json.Marshal(map[string]any{"predictor": "tournament"})
	var sess sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &sess); err != nil {
		t.Fatal(err)
	}
	data := encodeTrace(traceName, n)
	var last batchView
	for off := 0; off < len(data); off += chunk {
		end := min(off+chunk, len(data))
		if err := c.postEvents(base+"/v1/sessions/"+sess.ID+"/events", data[off:end], &last); err != nil {
			t.Fatal(err)
		}
	}
	var final sessionView
	if err := c.call("DELETE", base+"/v1/sessions/"+sess.ID, nil, &final); err != nil {
		t.Fatal(err)
	}

	spec, _ := capred.TraceByName(traceName)
	want, err := capred.RunTrace(capred.Limit(spec.Open(), n), capred.NewFullTournament(false), 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.Counters != want {
		t.Fatalf("tournament session counters diverge from offline run:\nserved  %+v\noffline %+v",
			final.Counters, want)
	}
}

// TestClientSplitsOversizedBatch: a server with a tiny body bound
// answers 413; the client must split the batch and deliver every
// event, ending with counters bit-identical to the offline run.
func TestClientSplitsOversizedBatch(t *testing.T) {
	const n = 20_000
	cfg := server.DefaultConfig()
	cfg.MaxBatchBytes = 512 // far below the test's chunk size
	base := startServer(t, cfg)

	c := newClient()
	c.sleep = func(time.Duration) {}
	body, _ := json.Marshal(map[string]any{"predictor": "hybrid"})
	var sess sessionView
	if err := c.call("POST", base+"/v1/sessions", body, &sess); err != nil {
		t.Fatal(err)
	}

	// One oversized chunk (the whole trace); postEvents must recurse
	// down to acceptable slices without dropping or reordering bytes.
	data := encodeTrace(traceName, n)
	var last batchView
	if err := c.postEvents(base+"/v1/sessions/"+sess.ID+"/events", data, &last); err != nil {
		t.Fatalf("streaming with splits: %v", err)
	}
	var final sessionView
	if err := c.call("DELETE", base+"/v1/sessions/"+sess.ID, nil, &final); err != nil {
		t.Fatal(err)
	}

	spec, _ := capred.TraceByName(traceName)
	p := capred.NewHybrid(capred.DefaultHybridConfig())
	want, err := capred.RunTrace(capred.Limit(spec.Open(), n), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.Counters != want {
		t.Fatalf("split-streamed counters diverge from offline run:\nserved  %+v\noffline %+v",
			final.Counters, want)
	}
}
