// Value-prediction comparison — the §1 positioning of the paper.
//
// "Load-value prediction may be used as an alternate option to reduce
// load-to-use latency. However, its lower predictability makes this
// option less attractive." This example measures exactly that on one
// trace: the hybrid address predictor against last-value, stride-value,
// context (FCM) and hybrid value predictors over the same loads, with
// matched table budgets.
package main

import (
	"fmt"
	"log"

	"capred"
)

func main() {
	spec, ok := capred.TraceByName("INT_go")
	if !ok {
		log.Fatal("trace INT_go missing")
	}

	// Address side.
	apred := capred.NewHybrid(capred.DefaultHybridConfig())
	addr, err := capred.RunTrace(capred.Limit(spec.Open(), 400_000), apred, 0)
	if err != nil {
		log.Fatalf("trace failed: %v", err)
	}

	// Value side: drive each value predictor over the same load stream.
	vcfg := capred.DefaultValueConfig()
	vpreds := []capred.ValuePredictor{
		capred.NewLastValue(vcfg),
		capred.NewStrideValue(vcfg),
		capred.NewContextValue(vcfg),
		capred.NewHybridValue(vcfg),
	}
	loads := int64(0)
	correct := make([]int64, len(vpreds))
	src := capred.Limit(spec.Open(), 400_000)
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if ev.Kind != capred.KindLoad {
			continue
		}
		loads++
		for i, vp := range vpreds {
			p := vp.Predict(ev.IP)
			if p.Speculate && p.Val == ev.Val {
				correct[i]++
			}
			vp.Resolve(ev.IP, p, ev.Val)
		}
	}
	if err := src.Err(); err != nil {
		log.Fatalf("trace source: %v", err)
	}

	fmt.Println("trace INT_go: correct speculations out of all loads")
	fmt.Printf("%-16s  %6.1f%%   (address prediction)\n",
		"hybrid address", addr.CorrectSpecRate()*100)
	for i, vp := range vpreds {
		fmt.Printf("%-16s  %6.1f%%\n", vp.Name(), 100*float64(correct[i])/float64(loads))
	}
	fmt.Println("\nAddresses repeat even when data does not: the pointer structure")
	fmt.Println("of a program is far more stable than the values it computes (§1).")
}
