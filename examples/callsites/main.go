// Call-site correlation example — §2.2 of the paper.
//
// xlisp's xlmatch is called from several functions in a recurring pattern
// (a-c-u-a, with xaref calling twice in a row), so the loads inside it
// see a per-call-site address sequence like A1 A1 C U A2 A2. A one-address
// history cannot tell the first A1 from the second; the paper finds the
// optimal history length grows to 3–4 addresses once sequences like this
// (and global correlation) are in play — Figure 9.
//
// This example reproduces that: a call-site-correlated function swept
// over CAP history lengths.
package main

import (
	"fmt"
	"log"

	"capred"
)

func main() {
	fmt.Println("workload: function called from 4 sites in a recurring pattern")
	fmt.Println("(one site doubled, as xaref doubles xlmatch), 5 loads per call")
	fmt.Printf("%-14s  %-14s\n", "history len", "correct/loads")

	for _, hl := range []int{1, 2, 3, 4, 6} {
		cc := capred.DefaultCAPConfig()
		cc.HistoryLen = hl
		// Isolate the history effect as Figure 9 does: no confidence
		// mechanisms, every prediction is a speculative access.
		cc.ConfThreshold = 0
		cc.TagBits = 0
		cc.CF = capred.NoCF()

		g := capred.NewGenerator(11)
		g.AddShare(capred.NewCallSites(g, 4, 6, 5), 100)
		c, err := capred.RunTrace(capred.Limit(g, 200_000), capred.NewCAP(cc), 0)
		if err != nil {
			log.Fatalf("trace failed: %v", err)
		}
		fmt.Printf("%12d  %12.1f%%\n", hl, c.CorrectSpecRate()*100)
	}

	fmt.Println("\nLength 1 is ambiguous at the doubled call site; a few addresses")
	fmt.Println("of shift(m)-xor history disambiguate the pattern (§3.2).")
}
