// Linked-list example — §2.1 of the paper.
//
// A pointer-chasing loop (p = p->next) produces an address sequence like
// 18-88-48-28 that repeats every traversal: completely unpredictable for
// a stride predictor, trivially predictable for a context-based one. The
// data-field loads of the same nodes differ only by a constant offset, so
// with the base-address scheme (§3.3, "global correlation") they share
// the CAP's link-table entries with the next-pointer load.
//
// This example builds exactly that program shape and compares predictors,
// then shows what turning global correlation off costs.
package main

import (
	"fmt"
	"log"

	"capred"
)

func run(p capred.Predictor) capred.Counters {
	g := capred.NewGenerator(7)
	// One 12-node linked list with two data fields per node, traversed
	// repeatedly (shuffled heap layout), plus a long strided array so the
	// stride predictor has something to be good at.
	g.AddShare(capred.NewLinkedList(g, 12, 2), 60)
	g.AddShare(capred.NewArrayWalk(g, 4000, 8, 8), 40)
	c, err := capred.RunTrace(capred.Limit(g, 300_000), p, 0)
	if err != nil {
		log.Fatalf("trace failed: %v", err)
	}
	return c
}

func main() {
	fmt.Println("workload: 12-node linked list (2 data fields/node) + long array")
	fmt.Printf("%-22s  %-10s  %-9s\n", "predictor", "pred rate", "accuracy")

	for _, p := range []capred.Predictor{
		capred.NewStride(capred.DefaultStrideConfig()),
		capred.NewCAP(capred.DefaultCAPConfig()),
		capred.NewHybrid(capred.DefaultHybridConfig()),
	} {
		c := run(p)
		fmt.Printf("%-22s  %8.1f%%  %8.2f%%\n", p.Name(), c.PredRate()*100, c.Accuracy()*100)
	}

	// Global correlation ablation: the same CAP without base addresses.
	cc := capred.DefaultCAPConfig()
	cc.GlobalCorrelation = false
	c := run(capred.NewCAP(cc))
	fmt.Printf("%-22s  %8.1f%%  %8.2f%%\n", "cap (no correlation)", c.PredRate()*100, c.Accuracy()*100)

	fmt.Println("\nStride cannot follow the pointer chase; CAP predicts all three")
	fmt.Println("loads per node, and sharing links across the fields (global")
	fmt.Println("correlation) trains faster than recording each field separately.")
}
