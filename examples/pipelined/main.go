// Pipelined-operation example — §5 of the paper.
//
// In a real pipeline a prediction is verified only a "prediction gap"
// later; meanwhile more predictions (including for the same static load)
// are made from speculative state. Stride predictors catch up after a
// misprediction by extrapolating over the pending instances; context
// predictors cannot, so a gap longer than a loop's period kills their
// predictions for that loop (the domino effect).
//
// This example runs the hybrid predictor over the same mixed workload at
// prediction gaps 0 (immediate), 4, 8 and 12.
package main

import (
	"fmt"
	"log"

	"capred"
)

func source() capred.Source {
	g := capred.NewGenerator(23)
	g.AddShare(capred.NewGlobalScalars(g, 12), 30)
	g.AddShare(capred.NewArrayWalk(g, 3000, 4, 8), 20)
	g.AddShare(capred.NewLinkedList(g, 10, 1), 25)
	g.AddShare(capred.NewCallSites(g, 4, 5, 4), 15)
	g.AddShare(capred.NewRandomWalk(g, 1<<15), 10)
	return capred.Limit(g, 300_000)
}

func main() {
	fmt.Println("hybrid CAP/stride over a mixed workload, varying prediction gap")
	fmt.Printf("%-10s  %-10s  %-9s\n", "gap", "pred rate", "accuracy")
	for _, gap := range []int{0, 4, 8, 12} {
		cfg := capred.DefaultHybridConfig()
		cfg.Speculative = gap > 0
		c, err := capred.RunTrace(source(), capred.NewHybrid(cfg), gap)
		if err != nil {
			log.Fatalf("trace failed: %v", err)
		}
		name := "immediate"
		if gap > 0 {
			name = fmt.Sprintf("%d loads", gap)
		}
		fmt.Printf("%-10s  %8.1f%%  %8.2f%%\n", name, c.PredRate()*100, c.Accuracy()*100)
	}
	fmt.Println("\nThe gap costs prediction rate once it exceeds the re-visit")
	fmt.Println("distance of the tightest loops, and accuracy drops because")
	fmt.Println("in-flight mispredictions propagate (§5.2) — the Figure 11 shape.")
}
