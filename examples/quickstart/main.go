// Quickstart: build the paper's hybrid CAP/stride predictor, stream one
// of the 45 synthetic traces through it in immediate-update mode (§4),
// and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"capred"
)

func main() {
	spec, ok := capred.TraceByName("INT_xli")
	if !ok {
		log.Fatal("trace INT_xli missing")
	}

	predictors := []capred.Predictor{
		capred.NewLast(capred.DefaultLastConfig()),
		capred.NewStride(capred.DefaultStrideConfig()),
		capred.NewCAP(capred.DefaultCAPConfig()),
		capred.NewHybrid(capred.DefaultHybridConfig()),
	}

	fmt.Println("trace INT_xli (xlisp-like mix), 400k instructions, immediate update")
	fmt.Printf("%-8s  %-10s  %-9s  %-12s\n", "pred", "pred rate", "accuracy", "correct/loads")
	for _, p := range predictors {
		c, err := capred.RunTrace(capred.Limit(spec.Open(), 400_000), p, 0)
		if err != nil {
			log.Fatalf("trace failed: %v", err)
		}
		fmt.Printf("%-8s  %8.1f%%  %8.2f%%  %11.1f%%\n",
			p.Name(), c.PredRate()*100, c.Accuracy()*100, c.CorrectSpecRate()*100)
	}
	fmt.Println("\nThe paper's ladder (§1, §4.2): last ≈ 40% of loads, the enhanced")
	fmt.Println("stride predictor ≈ 53%, CAP ≈ 61%, and the hybrid ≈ 67% at ≈ 99%")
	fmt.Println("accuracy. The same ordering holds here.")
}
