#!/usr/bin/env bash
# Cluster chaos test: runs the full experiment sweep through a real
# coordinator + worker fleet (capsim -coordinator, 3 × capserve -worker,
# race-enabled), SIGKILLs one worker mid-run, and requires the merged
# tables on the coordinator's stdout to be byte-identical to the
# committed goldens (internal/sim/testdata) — the same bytes a plain
# local capsim run prints. Dead-worker leases must be re-claimed and
# re-dispatched without a single failed shard or hash mismatch.
#
# Usage: scripts/cluster_chaos.sh   (from the repo root)
set -euo pipefail

RACE=${RACE:--race}
EVENTS=${EVENTS:-20000} # must match internal/sim/golden_test.go goldenEvents
WORKERS=${WORKERS:-3}
LEASE=${LEASE:-2s}

tmp=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

say() { printf 'chaos: %s\n' "$*"; }

say "building binaries ${RACE:+($RACE)}"
go build $RACE -o "$tmp/bin/" ./cmd/capsim ./cmd/capserve

# The coordinator runs every experiment at the golden event budget with
# the in-process fallback disabled: every shard must be computed by the
# fleet, so a dead worker exercises re-claim, not degradation.
say "starting coordinator (-experiment all -events $EVENTS -lease $LEASE)"
"$tmp/bin/capsim" -coordinator 127.0.0.1:0 -experiment all \
  -events "$EVENTS" -lease "$LEASE" -local-workers -1 -fleet-log \
  >"$tmp/tables.txt" 2>"$tmp/coord.err" &
coord=$!
pids+=("$coord")

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^capsim: coordinator listening on //p' "$tmp/coord.err")
  [ -n "$addr" ] && break
  kill -0 "$coord" 2>/dev/null || { cat "$tmp/coord.err" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { say "coordinator never reported its address"; exit 1; }
say "coordinator up at $addr"

wpids=()
for i in $(seq 1 "$WORKERS"); do
  "$tmp/bin/capserve" -worker -coordinator "http://$addr" \
    -worker-name "w$i" -worker-log \
    >"$tmp/w$i.out" 2>"$tmp/w$i.err" &
  wpids+=("$!")
  pids+=("$!")
done
say "$WORKERS workers pulling shards"

# SIGKILL one worker at a moment it provably holds a lease: its log
# shows a claimed shard with no matching completion. No drain, no
# goodbye: its heartbeats stop, the lease expires, the shard goes back
# to the pool for the survivors.
victim=${wpids[0]}
killed=""
for _ in $(seq 1 2000); do
  claims=$(grep -c 'claimed' "$tmp/w1.err" 2>/dev/null || true)
  completes=$(grep -c 'completed' "$tmp/w1.err" 2>/dev/null || true)
  if [ "${claims:-0}" -gt "${completes:-0}" ]; then
    kill -9 "$victim" 2>/dev/null || true
    killed=yes
    say "SIGKILLed worker w1 (pid $victim) holding an unposted shard ($claims claimed, $completes completed)"
    break
  fi
  kill -0 "$coord" 2>/dev/null || break # run finished before we struck
  sleep 0.02
done
[ -n "$killed" ] || { say "never caught w1 mid-shard"; exit 1; }

wait "$coord"
rc=$?
say "coordinator exited $rc"
[ "$rc" -eq 0 ] || { cat "$tmp/coord.err" >&2; exit 1; }

# Survivors must have drained cleanly (exit 0) once the coordinator
# wound the fleet down.
for i in $(seq 2 "$WORKERS"); do
  wait "${wpids[$((i - 1))]}"
  wrc=$?
  [ "$wrc" -eq 0 ] || { say "worker w$i exited $wrc"; cat "$tmp/w$i.err" >&2; exit 1; }
done
pids=()
say "surviving workers drained cleanly"

# The merged tables must be byte-identical to the committed goldens, in
# registry order — exactly what a local `capsim -experiment all` prints.
"$tmp/bin/capsim" -list | awk '{print $1}' >"$tmp/names.txt"
while read -r name; do
  cat "internal/sim/testdata/$name.golden"
  printf '\n'
done <"$tmp/names.txt" >"$tmp/expected.txt"
if ! cmp "$tmp/tables.txt" "$tmp/expected.txt"; then
  say "merged tables diverge from the committed goldens"
  diff "$tmp/expected.txt" "$tmp/tables.txt" | head -40 >&2
  exit 1
fi
say "merged tables are byte-identical to the goldens ($(wc -l <"$tmp/names.txt") experiments)"

# The stats line pins the fault-handling story: the fleet did all the
# work (no local shards), nothing failed, and no duplicate ever
# disagreed (hash mismatches are a determinism alarm).
stats=$(sed -n 's/^capsim: fleet: //p' "$tmp/coord.err")
[ -n "$stats" ] || { say "no fleet stats line on coordinator stderr"; exit 1; }
say "fleet stats: $stats"
case "$stats" in
*" 0 hash-mismatch)"*) ;;
*) say "determinism alarm: a duplicate result disagreed"; exit 1 ;;
esac
case "$stats" in
*"0 failed shards"*) ;;
*) say "a shard failed instead of being re-claimed"; exit 1 ;;
esac
# The victim died holding an unposted shard, so its lease must have
# expired and the shard must have been re-claimed by a survivor.
case "$stats" in
*" 0 reclaims"*) say "victim's lease was never re-claimed"; exit 1 ;;
esac
case "$stats" in
*"0 local shards"*) ;;
*) say "local fallback ran despite -local-workers -1"; exit 1 ;;
esac
say "PASS"
