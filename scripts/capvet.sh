#!/usr/bin/env bash
# Single entry point for the capvet static analyzer suite (DESIGN.md
# §12): self-check the analyzers against their golden testdata and the
# exit-code contract first, then vet the tree — so a broken analyzer
# can never certify a broken tree. CI and the local verify flow both
# call this script.
#
# Usage: scripts/capvet.sh [package patterns...]   (default ./...)
#
# CAPVET_BUDGET_SECS, when set, caps the wall-clock of the tree run:
# analysis time is part of the build contract (DESIGN.md §17), so CI
# fails the job if a full-tree vet blows the budget instead of letting
# the suite quietly get slower.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== capvet self-check (golden diagnostics + exit-code contract)"
go test ./internal/analysis/ ./cmd/capvet/

# Build once so the budget below times analysis, not compilation.
go build -o /tmp/capvet.bin ./cmd/capvet

echo "== capvet ${*:-./...}"
start=$(date +%s)
/tmp/capvet.bin "${@:-./...}"
elapsed=$(( $(date +%s) - start ))
echo "capvet: clean (${elapsed}s)"

if [[ -n "${CAPVET_BUDGET_SECS:-}" && "$elapsed" -gt "$CAPVET_BUDGET_SECS" ]]; then
    echo "capvet: tree run took ${elapsed}s, over the ${CAPVET_BUDGET_SECS}s budget" >&2
    exit 1
fi
