#!/usr/bin/env bash
# Single entry point for the capvet static analyzer suite (DESIGN.md
# §12): self-check the analyzers against their golden testdata and the
# exit-code contract first, then vet the tree — so a broken analyzer
# can never certify a broken tree. CI and the local verify flow both
# call this script.
#
# Usage: scripts/capvet.sh [package patterns...]   (default ./...)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== capvet self-check (golden diagnostics + exit-code contract)"
go test ./internal/analysis/ ./cmd/capvet/

echo "== capvet ${*:-./...}"
go run ./cmd/capvet "${@:-./...}"
echo "capvet: clean"
