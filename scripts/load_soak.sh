#!/usr/bin/env bash
# Compressed-day load soak: builds capserve and capload, replays a full
# simulated day of bursty session arrivals against the live server in
# about a minute of wall time, and enforces the committed SLO table
# (EXPERIMENTS.md §load-soak) plus the client/server /metrics
# crosscheck. CI runs this with RACE=-race so the whole admission path
# is race-checked under real overload.
#
# Usage: scripts/load_soak.sh   (from the repo root)
set -euo pipefail

RACE=${RACE:-}
SEED=${SEED:-1}
PROFILE=${PROFILE:-bursty}
SESSIONS=${SESSIONS:-500}
USERS=${USERS:-128}
SCALE=${SCALE:-1440} # 24h replayed in one minute
# The committed SLO table, measured on the tuned DefaultConfig
# (DESIGN.md §15). reject_rate 0: the tuned session cap admits the
# bursty day's peaks; error_rate 0: no transport failures tolerated.
SLO=${SLO:-p99_batch_ms=50,reject_rate=0,drop_rate=0,error_rate=0,evicted_sessions=0}

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

say() { printf 'soak: %s\n' "$*"; }

say "building binaries ${RACE:+($RACE)}"
go build $RACE -o "$tmp/bin/" ./cmd/capserve ./cmd/capload

say "starting capserve"
"$tmp/bin/capserve" -addr 127.0.0.1:0 \
  >"$tmp/out.log" 2>"$tmp/err.log" &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^capserve: listening on //p' "$tmp/out.log")
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { cat "$tmp/err.log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { say "server never reported its address"; exit 1; }
say "server up at http://$addr"

say "replaying a ${PROFILE} day: $SESSIONS sessions, $USERS users, ${SCALE}x compression"
say "SLO gate: $SLO"
"$tmp/bin/capload" -addr "http://$addr" \
  -seed "$SEED" -profile "$PROFILE" \
  -sessions "$SESSIONS" -users "$USERS" -time-scale "$SCALE" \
  -slo "$SLO" \
  -report "$tmp/report.json" -timeline "$tmp/timeline.csv"
rc=$?
[ "$rc" -eq 0 ] || { say "capload exited $rc"; exit "$rc"; }

python3 - "$tmp/report.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
t = rep["totals"]
cc = rep["metrics_crosscheck"]
assert cc["ok"], f"crosscheck failed: {cc}"
assert t["sessions_completed"] == t["sessions_planned"], \
    f'{t["sessions_completed"]}/{t["sessions_planned"]} sessions completed'
lat = rep["batch_latency_ms"]
print(f'soak: {t["sessions_completed"]}/{t["sessions_planned"]} sessions, '
      f'{t["events_acked"]} events acked, '
      f'p50/p95/p99 batch {lat["p50"]}/{lat["p95"]}/{lat["p99"]} ms, '
      f'open_429={t["open_429"]} budget_429={t["budget_429"]}')
EOF

# --- Graceful drain under post-soak state. ---
kill -TERM "$pid"
wait "$pid"
rc=$?
pid=""
[ "$rc" -eq 0 ] || { say "capserve exited $rc on SIGTERM"; cat "$tmp/err.log" >&2; exit 1; }
grep -q "drained cleanly" "$tmp/err.log" || {
  say "no clean-drain message"; cat "$tmp/err.log" >&2; exit 1; }
say "graceful drain OK"
say "PASS"
