#!/usr/bin/env bash
# Server smoke test: builds the binaries, starts capserve on a loopback
# port, streams a generated trace through a prediction session, asserts
# the served job table is byte-identical to capsim's offline output, and
# checks graceful drain on SIGTERM. CI runs this with RACE=-race.
#
# Usage: scripts/server_smoke.sh   (from the repo root)
set -euo pipefail

RACE=${RACE:-}
EVENTS=${EVENTS:-20000}
JOB_EVENTS=${JOB_EVENTS:-5000}

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

say() { printf 'smoke: %s\n' "$*"; }

say "building binaries ${RACE:+($RACE)}"
go build $RACE -o "$tmp/bin/" ./cmd/capserve ./cmd/capsim ./cmd/tracegen

say "generating $EVENTS-event trace"
"$tmp/bin/tracegen" -trace INT_xli -events "$EVENTS" -o "$tmp/t.capt" >/dev/null

say "starting capserve"
"$tmp/bin/capserve" -addr 127.0.0.1:0 -job-events "$JOB_EVENTS" \
  >"$tmp/out.log" 2>"$tmp/err.log" &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^capserve: listening on //p' "$tmp/out.log")
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { cat "$tmp/err.log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { say "server never reported its address"; exit 1; }
base="http://$addr"
say "server up at $base"

curl -fsS "$base/healthz" >/dev/null

# --- Session streaming: the whole trace file through one session. ---
sid=$(curl -fsS -X POST -d '{"predictor":"hybrid"}' "$base/v1/sessions" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
say "opened session $sid"
curl -fsS --data-binary @"$tmp/t.capt" "$base/v1/sessions/$sid/events" >/dev/null
curl -fsS -X DELETE "$base/v1/sessions/$sid" >"$tmp/final.json"
python3 - "$tmp/final.json" "$EVENTS" <<'EOF'
import json, sys
view = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
assert view["events"] == want, f'ingested {view["events"]} events, want {want}'
c = view["counters"]
assert c["Loads"] > 0 and 0 < c["Correct"] <= c["Loads"], f'implausible counters: {c}'
print(f'smoke: session ingested {view["events"]} events, '
      f'{c["Correct"]}/{c["Loads"]} correct')
EOF

# --- Job queue: served table must match capsim byte for byte. ---
jid=$(curl -fsS -X POST -d '{"experiment":"baselines"}' "$base/v1/jobs" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
say "submitted job $jid"
for _ in $(seq 1 600); do
  state=$(curl -fsS "$base/v1/jobs/$jid" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  case "$state" in done) break ;; failed) say "job failed"; exit 1 ;; esac
  sleep 0.5
done
[ "$state" = done ] || { say "job never finished (state=$state)"; exit 1; }
curl -fsS "$base/v1/jobs/$jid/table" >"$tmp/served.txt"
"$tmp/bin/capsim" -experiment baselines -events "$JOB_EVENTS" -workers 1 \
  >"$tmp/offline.txt"
# capsim prints the table plus a trailing newline; compare modulo that.
if ! diff <(cat "$tmp/served.txt") <(sed -e '${/^$/d}' "$tmp/offline.txt"); then
  say "served job table diverges from capsim output"
  exit 1
fi
say "served job table is byte-identical to capsim"

# --- Observability surface. ---
curl -fsS "$base/metrics" >"$tmp/metrics.txt"
for m in capserve_sessions_opened_total capserve_events_ingested_total \
         capserve_jobs_completed_total; do
  grep -q "^$m" "$tmp/metrics.txt" || { say "metric $m missing"; exit 1; }
done
say "metrics page exposes session and job counters"

# --- Graceful drain. ---
kill -TERM "$pid"
wait "$pid"
rc=$?
pid=""
[ "$rc" -eq 0 ] || { say "capserve exited $rc on SIGTERM"; cat "$tmp/err.log" >&2; exit 1; }
grep -q "drained cleanly" "$tmp/err.log" || {
  say "no clean-drain message"; cat "$tmp/err.log" >&2; exit 1; }
say "graceful drain OK"
say "PASS"
